// Quickstart: simulate one MANET broadcast workload under flooding and
// under the paper's adaptive counter-based scheme, and print the paper's
// metrics side by side.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"repro/storm"
)

func main() {
	fmt.Println("Broadcast storm quickstart: 100 hosts roaming a 5x5 map")
	fmt.Println("(map unit = 500 m radio radius, IEEE 802.11 DSSS timing)")
	fmt.Println()

	for _, sch := range []storm.Scheme{
		storm.Flooding{},
		storm.Counter{C: 3},
		storm.AdaptiveCounter{},
	} {
		cfg := storm.Config{
			MapUnits: 5,   // 2.5 km x 2.5 km
			Hosts:    100, // the paper's population
			Scheme:   sch, // rebroadcast decision scheme under test
			Requests: 60,  // broadcast operations (paper: 10,000)
			Seed:     42,  // deterministic: same seed, same run
		}
		// RunContext supports cooperative cancellation and reports which
		// engine executed the run; results are byte-identical across
		// engines, so picking one is purely a performance decision.
		res, err := storm.RunContext(context.Background(), cfg)
		if err != nil {
			panic(err)
		}
		s := res.Summary
		fmt.Printf("%-10s  RE %.3f   SRB %.3f   latency %6.1f ms   data tx %d   hello tx %d   (%s, %v)\n",
			sch.Name(), s.MeanRE, s.MeanSRB, s.MeanLatency.Milliseconds(),
			s.Transmissions-s.HelloSent, s.HelloSent, res.Engine, res.Elapsed.Round(1e6))
	}

	fmt.Println()
	fmt.Println("RE  = fraction of reachable hosts that got each packet")
	fmt.Println("SRB = fraction of receiving hosts that did NOT need to rebroadcast")
	fmt.Println("The adaptive scheme keeps RE near flooding while cutting rebroadcasts.")
}
