// Reliable broadcast: the application the paper says its schemes can
// underpin. Best-effort dissemination (any suppression scheme) is
// followed by a cheap repair layer: hosts advertise recently received
// broadcast ids in their HELLOs; a neighbor that missed one NACKs and
// receives a unicast retransmission over the MAC's DATA/ACK ARQ.
//
// The example runs a hostile channel (aggressive suppression plus 15%
// fading loss) with and without repair and shows the delivery gap close.
//
//	go run ./examples/reliable
package main

import (
	"fmt"

	"repro/storm"
)

func main() {
	fmt.Println("Reliable broadcast on a lossy 5x5 map (C=2 suppression + 15% fading loss)")
	fmt.Println()
	fmt.Printf("%-16s  %-7s  %-9s  %-9s  %s\n",
		"variant", "RE", "requests", "repaired", "hello tx")

	for _, repair := range []bool{false, true} {
		cfg := storm.Config{
			Hosts:         80,
			MapUnits:      5,
			Scheme:        storm.Counter{C: 2},
			Requests:      40,
			LossRate:      0.15,
			Repair:        repair,
			HelloMode:     storm.HelloFixed,
			HelloInterval: 1 * storm.Second,
			Drain:         8 * storm.Second,
			Seed:          9,
		}
		net, err := storm.New(cfg)
		if err != nil {
			panic(err)
		}
		s := net.Run()
		name := "best-effort"
		if repair {
			name = "with repair"
		}
		fmt.Printf("%-16s  %.3f   %-9d  %-9d  %d\n",
			name, s.MeanRE, s.RepairsRequested, s.RepairsDelivered, s.HelloSent)
	}

	fmt.Println()
	fmt.Println("The repair layer recovers most of what suppression and fading lose,")
	fmt.Println("at the cost of slightly larger HELLOs and a few unicast exchanges —")
	fmt.Println("exactly the layering the paper proposes for reliable delivery.")
}
