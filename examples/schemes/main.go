// Scheme roster: every broadcast scheme in the study — the MOBICOM '99
// baselines and this paper's adaptive schemes — on one dense and one
// sparse map, side by side. The fixed-threshold dilemma and the adaptive
// resolution are visible in a single screen of output.
//
//	go run ./examples/schemes
package main

import (
	"fmt"

	"repro/storm"
)

func main() {
	fmt.Println("All schemes, dense (1x1) vs sparse (9x9) map, 100 hosts")
	fmt.Println()
	fmt.Printf("%-10s  %-8s  %-8s  %-10s  %-8s  %-8s  %s\n",
		"scheme", "RE@1x1", "SRB@1x1", "|", "RE@9x9", "SRB@9x9", "needs")

	for _, sch := range storm.Schemes() {
		var cells []string
		for _, units := range []int{1, 9} {
			net, err := storm.New(storm.Config{
				MapUnits: units,
				Scheme:   sch,
				Requests: 40,
				Seed:     17,
			})
			if err != nil {
				panic(err)
			}
			s := net.Run()
			cells = append(cells, fmt.Sprintf("%.3f", s.MeanRE), fmt.Sprintf("%.3f", s.MeanSRB))
		}
		needs := "-"
		switch {
		case sch.NeedsHello() && sch.NeedsPosition():
			needs = "hello+gps"
		case sch.NeedsHello():
			needs = "hello"
		case sch.NeedsPosition():
			needs = "gps"
		}
		fmt.Printf("%-10s  %-8s  %-8s  %-10s  %-8s  %-8s  %s\n",
			sch.Name(), cells[0], cells[1], "|", cells[2], cells[3], needs)
	}

	fmt.Println()
	fmt.Println("Fixed thresholds (C, D, A, P) win one column and lose the other;")
	fmt.Println("the adaptive schemes (AC, AL, NC) hold both.")
}
