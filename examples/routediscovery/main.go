// Route discovery: the paper's motivating application. On-demand MANET
// routing protocols (DSR, AODV, ZRP...) flood a route_request packet to
// find a path to a destination; the broadcast storm is the cost of every
// such discovery. This example measures, for each scheme:
//
//   - discovery success: did the request reach a randomly chosen
//     destination host (when one was reachable at all)?
//   - overhead: how many transmissions each discovery cost.
//
// It uses storm.Network's DeliveryHook to observe per-host dissemination.
//
//	go run ./examples/routediscovery
package main

import (
	"fmt"

	"repro/storm"
)

func main() {
	const (
		hosts    = 100
		mapUnits = 7 // sparse enough that routes are genuinely multihop
		requests = 80
	)

	fmt.Printf("Route discovery on a %dx%d map, %d hosts, %d route requests per scheme\n\n",
		mapUnits, mapUnits, hosts, requests)
	fmt.Printf("%-10s  %-18s  %-14s  %s\n",
		"scheme", "discovery success", "tx/discovery", "mean latency")

	for _, sch := range []storm.Scheme{
		storm.Flooding{},
		storm.Counter{C: 2},
		storm.AdaptiveCounter{},
		storm.AdaptiveLocation{},
		storm.NeighborCoverage{},
	} {
		success, txPer, lat := discover(sch, hosts, mapUnits, requests)
		fmt.Printf("%-10s  %-18s  %-14.1f  %.1f ms\n",
			sch.Name(), fmt.Sprintf("%.1f%%", 100*success), txPer, lat)
	}

	fmt.Println()
	fmt.Println("Every scheme above floods less than plain flooding; the adaptive")
	fmt.Println("schemes keep discovery success high while cutting the per-request")
	fmt.Println("transmission storm — exactly the trade the paper optimizes.")
}

// discover runs one simulation and treats each broadcast as a route
// request to a pseudo-randomly chosen destination host.
func discover(sch storm.Scheme, hosts, mapUnits, requests int) (success, txPerDiscovery, latencyMS float64) {
	cfg := storm.Config{
		Hosts:    hosts,
		MapUnits: mapUnits,
		Scheme:   sch,
		Requests: requests,
		Seed:     7,

		// The per-request loop below walks the full record set.
		RetainRecords: true,
	}
	net, err := storm.New(cfg)
	if err != nil {
		panic(err)
	}

	// Choose a destination per request id, deterministically, and record
	// which destinations were reached.
	destRNG := storm.NewRNG(99)
	dests := make(map[storm.BroadcastID]storm.NodeID)
	reached := make(map[storm.BroadcastID]bool)
	net.DeliveryHook = func(id storm.BroadcastID, h storm.NodeID) {
		d, ok := dests[id]
		if !ok {
			// First delivery of a broadcast is always the source; pick
			// the destination now, excluding the source itself.
			for {
				d = storm.NodeID(destRNG.IntN(hosts))
				if d != id.Source {
					break
				}
			}
			dests[id] = d
		}
		if h == d {
			reached[id] = true
		}
	}

	s := net.Run()

	hits := 0
	for _, rec := range net.Records() {
		if reached[rec.ID] {
			hits++
		}
	}
	success = float64(hits) / float64(len(net.Records()))
	txPerDiscovery = float64(s.Transmissions-s.HelloSent) / float64(s.Broadcasts)
	latencyMS = s.MeanLatency.Milliseconds()
	return success, txPerDiscovery, latencyMS
}
