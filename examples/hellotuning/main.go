// Hello tuning: the paper's dynamic hello interval (DHI) in action. The
// neighbor-coverage scheme depends on fresh neighborhood knowledge, so
// HELLO beacons must be frequent when hosts move fast — but frequent
// beacons waste bandwidth when nothing changes. DHI adjusts each host's
// interval from its measured neighborhood variation:
//
//	hi_x = max(himin, (nvmax - nv_x)/nvmax * himax)
//
// This example sweeps host speed on a sparse map and shows how fixed
// 1 s / 10 s intervals and DHI trade reachability against HELLO cost.
//
//	go run ./examples/hellotuning
package main

import (
	"fmt"

	"repro/storm"
)

func main() {
	const mapUnits = 9
	speeds := []float64{20, 60}

	fmt.Printf("Neighbor-coverage scheme on a %dx%d map: hello policy vs speed\n\n", mapUnits, mapUnits)
	fmt.Printf("%-22s  %-9s  %-7s  %-7s  %s\n", "hello policy", "speed", "RE", "SRB", "HELLOs sent")

	type policy struct {
		name string
		cfg  func(c *storm.Config)
	}
	policies := []policy{
		{"fixed 1s", func(c *storm.Config) {
			c.HelloMode = storm.HelloFixed
			c.HelloInterval = 1 * storm.Second
		}},
		{"fixed 10s", func(c *storm.Config) {
			c.HelloMode = storm.HelloFixed
			c.HelloInterval = 10 * storm.Second
		}},
		{"dynamic (paper DHI)", func(c *storm.Config) {
			c.HelloMode = storm.HelloDynamic
		}},
	}

	for _, p := range policies {
		for _, sp := range speeds {
			cfg := storm.Config{
				MapUnits:    mapUnits,
				MaxSpeedKMH: sp,
				Scheme:      storm.NeighborCoverage{},
				Requests:    60,
				Seed:        5,
			}
			p.cfg(&cfg)
			net, err := storm.New(cfg)
			if err != nil {
				panic(err)
			}
			s := net.Run()
			fmt.Printf("%-22s  %-9s  %.3f   %.3f   %d\n",
				p.name, fmt.Sprintf("%g km/h", sp), s.MeanRE, s.MeanSRB, s.HelloSent)
		}
	}

	fmt.Println()
	fmt.Println("The 10 s interval is cheap but stale at speed; the 1 s interval is")
	fmt.Println("fresh but noisy. DHI converges toward whichever the conditions need.")
}
