package repro

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"repro/internal/experiment"
	"repro/internal/geom"
	"repro/internal/manet"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/phy"
	"repro/internal/routing"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// Every figure in the paper's evaluation has a benchmark here that
// regenerates it. The benchmarks run the harness at a reduced scale
// (fewer broadcasts and replicas than the CLI defaults) so the whole
// suite finishes in minutes; `go run ./cmd/figures -fig <id>` regenerates
// any figure at full configurable scale. The tables are printed once per
// benchmark so `go test -bench` output doubles as a results artifact.

// benchOptions returns the reduced-scale harness options for benchmarks.
func benchOptions() experiment.Options {
	return experiment.Options{
		Requests: 25,
		Replicas: 1,
		Trials:   2000,
		Speeds:   []float64{20, 60},
		HelloIntervalsMS: []int{
			1000, 10000, 30000,
		},
	}
}

// runFigure executes one figure spec b.N times, printing its tables on
// the first iteration.
func runFigure(b *testing.B, id string) {
	b.Helper()
	spec, ok := experiment.Lookup(id)
	if !ok {
		b.Fatalf("unknown figure %s", id)
	}
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		tables := spec.Run(o)
		if i == 0 {
			fmt.Printf("\n--- %s: %s ---\npaper: %s\n", spec.ID, spec.Title, spec.Paper)
			for _, t := range tables {
				fmt.Print(t.Text())
			}
		}
	}
}

func BenchmarkFig1EAC(b *testing.B)                 { runFigure(b, "fig1") }
func BenchmarkFig2Contention(b *testing.B)          { runFigure(b, "fig2") }
func BenchmarkFig5aSlope(b *testing.B)              { runFigure(b, "fig5a") }
func BenchmarkFig5bN1(b *testing.B)                 { runFigure(b, "fig5b") }
func BenchmarkFig5cN2(b *testing.B)                 { runFigure(b, "fig5c") }
func BenchmarkFig5dShape(b *testing.B)              { runFigure(b, "fig5d") }
func BenchmarkFig6CounterFuncs(b *testing.B)        { runFigure(b, "fig6") }
func BenchmarkFig7CounterComparison(b *testing.B)   { runFigure(b, "fig7") }
func BenchmarkFig8LocationFuncs(b *testing.B)       { runFigure(b, "fig8") }
func BenchmarkFig9ALTuning(b *testing.B)            { runFigure(b, "fig9") }
func BenchmarkFig10LocationComparison(b *testing.B) { runFigure(b, "fig10") }
func BenchmarkFig11HelloInterval(b *testing.B)      { runFigure(b, "fig11") }
func BenchmarkFig12DynamicHello(b *testing.B)       { runFigure(b, "fig12") }
func BenchmarkFig13Overall(b *testing.B)            { runFigure(b, "fig13") }

// Ablation benchmarks isolate design choices (see DESIGN.md section 7).

func runAblation(b *testing.B, id string) {
	b.Helper()
	spec, ok := experiment.LookupAny(id)
	if !ok {
		b.Fatalf("unknown ablation %s", id)
	}
	o := benchOptions()
	o.Maps = []int{1, 5, 9}
	for i := 0; i < b.N; i++ {
		tables := spec.Run(o)
		if i == 0 {
			fmt.Printf("\n--- %s: %s ---\n", spec.ID, spec.Title)
			for _, t := range tables {
				fmt.Print(t.Text())
			}
		}
	}
}

func BenchmarkAblAssessmentDelay(b *testing.B) { runAblation(b, "abl-assess") }
func BenchmarkAblCollisionModel(b *testing.B)  { runAblation(b, "abl-collision") }
func BenchmarkAblHelloTransport(b *testing.B)  { runAblation(b, "abl-hello") }
func BenchmarkAblNeighborExpiry(b *testing.B)  { runAblation(b, "abl-expiry") }
func BenchmarkAblCluster(b *testing.B)         { runAblation(b, "abl-cluster") }
func BenchmarkAblCapture(b *testing.B)         { runAblation(b, "abl-capture") }
func BenchmarkAblDistance(b *testing.B)        { runAblation(b, "abl-distance") }
func BenchmarkAblOracle(b *testing.B)          { runAblation(b, "abl-oracle") }
func BenchmarkAblMobilityModel(b *testing.B)   { runAblation(b, "abl-mobility") }
func BenchmarkAblOfferedLoad(b *testing.B)     { runAblation(b, "abl-load") }
func BenchmarkAblRTSCTS(b *testing.B)          { runAblation(b, "abl-rts") }
func BenchmarkAblGossip(b *testing.B)          { runAblation(b, "abl-prob") }

// --- Substrate micro-benchmarks ---

// schedulerModes enumerates the two queue implementations so every
// kernel benchmark runs as a ladder/heap pair; the ratio between the
// arms is the ladder queue's speedup.
var schedulerModes = []struct {
	name string
	mk   func() *sim.Scheduler
}{
	{"queue=ladder", sim.NewScheduler},
	{"queue=heap", sim.NewHeapScheduler},
}

// BenchmarkScheduler measures raw event throughput of the DES kernel
// under a standing population of 10k pending events: each operation
// fires one event whose callback immediately re-arms it at a uniform
// future offset, the simulation-kernel steady state.
func BenchmarkScheduler(b *testing.B) {
	const standing = 10_000
	for _, mode := range schedulerModes {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			s := mode.mk()
			rng := sim.NewRNG(1)
			horizon := 1000 * sim.Millisecond
			var rearm func()
			rearm = func() { s.After(rng.UniformDuration(0, horizon), rearm) }
			for i := 0; i < standing; i++ {
				s.After(rng.UniformDuration(0, horizon), rearm)
			}
			for i := 0; i < 4*standing; i++ {
				s.Step() // reach pool/rung steady state before measuring
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
		})
	}
}

// BenchmarkSchedulerCancel measures the cancellation path against a 10k
// standing load: each operation schedules one event and cancels it
// (tombstone for the ladder, eager heap removal for the legacy queue),
// with periodic clock advances so lazily cancelled events are collected
// rather than accumulated.
func BenchmarkSchedulerCancel(b *testing.B) {
	const standing = 10_000
	for _, mode := range schedulerModes {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			s := mode.mk()
			rng := sim.NewRNG(1)
			horizon := 1000 * sim.Millisecond
			nop := func() {}
			var rearm func()
			rearm = func() { s.After(rng.UniformDuration(0, horizon), rearm) }
			for i := 0; i < standing; i++ {
				s.After(rng.UniformDuration(0, horizon), rearm)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := s.After(rng.UniformDuration(0, horizon), nop)
				s.Cancel(e)
				if i%1024 == 1023 {
					// Let the queue consume a slice of the timeline so
					// tombstones are recycled instead of piling up.
					s.RunUntil(s.Now().Add(10 * sim.Millisecond))
				}
			}
		})
	}
}

// BenchmarkSchedulerMixed interleaves the three kernel operations the
// simulation actually issues — schedule, cancel, fire — against a 10k
// standing load: each operation arms one surviving event, arms and
// cancels a victim (an inhibited rebroadcast), and steps the clock.
func BenchmarkSchedulerMixed(b *testing.B) {
	const standing = 10_000
	for _, mode := range schedulerModes {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			s := mode.mk()
			rng := sim.NewRNG(1)
			horizon := 1000 * sim.Millisecond
			nop := func() {}
			for i := 0; i < standing; i++ {
				s.After(rng.UniformDuration(0, horizon), nop)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.After(rng.UniformDuration(0, horizon), nop)
				victim := s.After(rng.UniformDuration(0, horizon), nop)
				s.Cancel(victim)
				s.Step()
			}
		})
	}
}

// BenchmarkCoverageGrid measures the location schemes' multi-sender
// additional-coverage estimation.
func BenchmarkCoverageGrid(b *testing.B) {
	senders := []geom.Point{{X: 200}, {X: -150, Y: 100}, {Y: -250}, {X: 90, Y: 90}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		geom.UncoveredFraction(geom.Point{}, senders, 500, scheme.CoverageResolution)
	}
}

// BenchmarkBroadcastSim measures end-to-end simulation cost per run
// (100 hosts, 5x5 map, adaptive counter), in a ladder/heap pair. The
// timer and the allocation accounting cover only Run, not network
// construction, so allocs/event is the steady-state per-event heap
// traffic the zero-allocation core is pinned to (budget: at most 1).
func BenchmarkBroadcastSim(b *testing.B) {
	for _, mode := range []struct {
		name string
		heap bool
	}{{"queue=ladder", false}, {"queue=heap", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var events, mallocs uint64
			var ms0, ms1 runtime.MemStats
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				n, err := manet.New(manet.Config{
					MapUnits:           5,
					Scheme:             scheme.AdaptiveCounter{},
					Requests:           20,
					Seed:               uint64(i + 1),
					DisableLadderQueue: mode.heap,
				})
				if err != nil {
					b.Fatal(err)
				}
				runtime.ReadMemStats(&ms0)
				b.StartTimer()
				s := n.Run()
				b.StopTimer()
				runtime.ReadMemStats(&ms1)
				events += s.Events
				mallocs += ms1.Mallocs - ms0.Mallocs
				b.StartTimer()
			}
			b.StopTimer()
			b.ReportMetric(float64(events)/float64(b.N), "events/op")
			b.ReportMetric(float64(mallocs)/float64(events), "allocs/event")
		})
	}
}

// nopListener discards channel callbacks; the saturated-channel
// benchmark measures the medium itself, not a MAC.
type nopListener struct{}

func (nopListener) CarrierBusy()                 {}
func (nopListener) CarrierIdle()                 {}
func (nopListener) Deliver(*packet.Frame)        {}
func (nopListener) DeliverGarbled(*packet.Frame) {}

// BenchmarkSaturatedChannel measures the collision engine in the regime
// the paper studies: a broadcast storm holding tens of transmissions
// concurrently on the air. 1000 static hosts on an 11x11 map (the
// paper's 500 m unit and radius) each retransmit a 280-byte broadcast
// at a random cadence tuned to keep a mean of ~75 flights in the air,
// and each op advances the channel through 100 ms of that saturated
// steady state. The localized arm buckets active senders by grid cell
// and intersects receiver bitsets only inside the 2xradius interference
// neighborhood; the legacy arm is the original global scan over every
// active transmission with per-record garbled maps. The ratio between
// the arms is the localized engine's speedup; allocs/event on the
// localized arm is pinned (budget: at most 1), where an event is one
// frame resolved end of airtime included.
func BenchmarkSaturatedChannel(b *testing.B) {
	const (
		hosts   = 1000
		side    = 11 * 500.0 // 11x11 map of 500 m units
		radius  = 500.0
		meanGap = 32 * sim.Millisecond // ~75 concurrent flights
		slice   = 100 * sim.Millisecond
	)
	for _, mode := range []struct {
		name   string
		legacy bool
	}{{"engine=localized", false}, {"engine=legacy", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			sched := sim.NewScheduler()
			ch := phy.NewChannel(sched, phy.DSSSTiming(), radius)
			ch.DisableInterference = mode.legacy
			ch.SetMaxSpeed(0)
			rng := sim.NewRNG(7)
			air := ch.Timing().Airtime(280)
			for i := 0; i < hosts; i++ {
				i := i
				p := geom.Point{X: rng.UniformFloat(0, side), Y: rng.UniformFloat(0, side)}
				ch.Attach(phy.PositionFunc(func(sim.Time) geom.Point { return p }), nopListener{})
				f := packet.NewBroadcast(packet.BroadcastID{Source: packet.NodeID(i), Seq: 1},
					packet.NodeID(i), p)
				var rearm func()
				rearm = func() {
					ch.Transmit(i, f, nil)
					// The gap always exceeds the airtime, so the host (and
					// its frame) are free again before the next shot.
					sched.After(rng.UniformDuration(air+sim.Millisecond, 2*meanGap), rearm)
				}
				sched.After(rng.UniformDuration(0, 2*meanGap), rearm)
			}
			// Reach pool and offered-load steady state before measuring.
			sched.RunUntil(sim.Time(2 * sim.Second))
			var ms0, ms1 runtime.MemStats
			tx0 := ch.Stats().Transmissions
			runtime.ReadMemStats(&ms0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sched.RunUntil(sched.Now().Add(slice))
			}
			b.StopTimer()
			runtime.ReadMemStats(&ms1)
			events := ch.Stats().Transmissions - tx0
			b.ReportMetric(float64(events)/float64(b.N), "tx/op")
			b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(events), "allocs/event")
		})
	}
}

// BenchmarkSchemeDecision measures a single scheme decision (the per-
// reception hot path) for each scheme family.
func BenchmarkSchemeDecision(b *testing.B) {
	host := benchHost{neighbors: []packet.NodeID{1, 2, 3, 4, 5, 6, 7, 8}}
	cases := []struct {
		name string
		s    scheme.Scheme
	}{
		{"counter", scheme.Counter{C: 3}},
		{"adaptive-counter", scheme.AdaptiveCounter{}},
		{"location", scheme.Location{A: 0.0469}},
		{"adaptive-location", scheme.AdaptiveLocation{}},
		{"neighbor-coverage", scheme.NeighborCoverage{}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			rx := scheme.Reception{From: 1, SenderPos: geom.Point{X: 300}}
			dup := scheme.Reception{From: 2, SenderPos: geom.Point{X: -200, Y: 150}}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				j := c.s.NewJudge(host, rx)
				j.Initial()
				j.OnDuplicate(dup)
			}
		})
	}
}

// benchHost is a minimal HostView for decision benchmarks.
type benchHost struct {
	neighbors []packet.NodeID
}

var _ scheme.HostView = benchHost{}

func (h benchHost) ID() packet.NodeID          { return 0 }
func (h benchHost) Position() geom.Point       { return geom.Point{} }
func (h benchHost) Radius() float64            { return 500 }
func (h benchHost) NeighborCount() int         { return len(h.neighbors) }
func (h benchHost) Neighbors() []packet.NodeID { return h.neighbors }
func (h benchHost) TwoHop(n packet.NodeID) []packet.NodeID {
	if n == 1 {
		return []packet.NodeID{2, 3}
	}
	return nil
}

// BenchmarkRouteDiscovery measures the motivating application end to
// end: AODV-lite route discovery carried by each suppression scheme.
func BenchmarkRouteDiscovery(b *testing.B) {
	for _, sch := range []scheme.Scheme{
		scheme.Flooding{}, scheme.AdaptiveCounter{}, scheme.NeighborCoverage{},
	} {
		sch := sch
		b.Run(sch.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n, err := routing.New(routing.Config{
					Hosts:       100,
					MapUnits:    5,
					Scheme:      sch,
					Discoveries: 20,
					Seed:        uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				r := n.Run()
				if i == 0 {
					b.Logf("success=%.2f hops=%.2f rreq/d=%.1f",
						r.SuccessRate(), r.MeanRouteHops, r.RequestsPerDiscovery())
				}
			}
		})
	}
}

// BenchmarkScaling measures how simulation cost grows with population at
// the paper's density (4 hosts per unit cell). The grid arm routes every
// unit-disk query through the spatial index; the linear arm forces the
// original O(hosts) scans, so the ratio between the two at each scale is
// the index's speedup (it widens with population, since the grid's query
// cost tracks local density rather than the total count).
func BenchmarkScaling(b *testing.B) {
	cases := []struct{ hosts, mapUnits int }{
		{100, 5}, {400, 10}, {1000, 16},
	}
	for _, tc := range cases {
		for _, mode := range []struct {
			name   string
			linear bool
		}{{"grid", false}, {"linear", true}} {
			tc, mode := tc, mode
			b.Run(fmt.Sprintf("hosts=%d/%s", tc.hosts, mode.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					n, err := manet.New(manet.Config{
						Hosts:               tc.hosts,
						MapUnits:            tc.mapUnits,
						Scheme:              scheme.AdaptiveCounter{},
						Requests:            10,
						Seed:                uint64(i + 1),
						DisableSpatialIndex: mode.linear,
					})
					if err != nil {
						b.Fatal(err)
					}
					n.Run()
				}
			})
		}
	}
}

// BenchmarkMegaScale runs million-host-class worlds: populations far
// beyond the paper's 100 hosts on maps hundreds of units across, the
// regime the struct-of-arrays host state, the lazy dense neighbor
// tables, the two-level (macro over fine) grid, and the streaming
// record fold exist for. The map keeps the paper's density rule out of
// reach on purpose — mean degree is below the percolation threshold, so
// broadcasts touch small components while the machinery (movement,
// spatial index maintenance, interference buckets) carries the full
// population.
//
// Two things are gated via cmd/benchjson: the benchmark completing at
// all (construction or run state scaling as O(hosts^2) makes 100k hosts
// unreachable), and run-bytes/op — the heap allocated during Run — which
// must track the event count and the handful of active broadcasts, not
// the population or the total number of broadcasts ever issued.
func BenchmarkMegaScale(b *testing.B) {
	cases := []struct{ hosts, mapUnits, requests int }{
		{100_000, 300, 20},
		{1_000_000, 900, 10},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(fmt.Sprintf("hosts=%d", tc.hosts), func(b *testing.B) {
			if testing.Short() && tc.hosts > 100_000 {
				b.Skip("million-host arm skipped in short mode")
			}
			var events uint64
			var runBytes uint64
			var ms0, ms1 runtime.MemStats
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				n, err := manet.New(manet.Config{
					Hosts:    tc.hosts,
					MapUnits: tc.mapUnits,
					Scheme:   scheme.Flooding{},
					Requests: tc.requests,
					// The paper's 10 km/h-per-unit rule extrapolates to
					// thousands of km/h on mega maps; pin vehicular speed.
					MaxSpeedKMH: 50,
					Seed:        uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				runtime.GC()
				runtime.ReadMemStats(&ms0)
				b.StartTimer()
				s := n.Run()
				b.StopTimer()
				runtime.ReadMemStats(&ms1)
				if s.Broadcasts != tc.requests {
					b.Fatalf("ran %d broadcasts, want %d", s.Broadcasts, tc.requests)
				}
				events += s.Events
				runBytes += ms1.TotalAlloc - ms0.TotalAlloc
				b.StartTimer()
			}
			b.StopTimer()
			b.ReportMetric(float64(events)/float64(b.N), "events/op")
			b.ReportMetric(float64(runBytes)/float64(b.N), "run-bytes/op")
		})
	}
}

// shardedScalingConfig is the 100k-host mega-map workload every
// BenchmarkShardedScaling arm runs.
func shardedScalingConfig(engine manet.Engine, shards int, arena *manet.Arena, seed uint64) manet.Config {
	return manet.Config{
		Hosts:    100_000,
		MapUnits: 300,
		Scheme:   scheme.Flooding{},
		Requests: 20,
		// The paper's 10 km/h-per-unit rule extrapolates to thousands of
		// km/h on mega maps; pin vehicular speed.
		MaxSpeedKMH: 50,
		Engine:      engine,
		Shards:      shards,
		Arena:       arena,
		Seed:        seed,
	}
}

// BenchmarkShardedScaling measures the sharded engine against the
// sequential oracle on the 100k-host mega map, with construction and
// run reported as separate sub-benchmarks: phase=construct isolates the
// shard-batched slab build (where the arena's allocation win lives),
// phase=run isolates the event loop (where the parallel barrier drains
// spend cores). Every arm produces the byte-identical summary
// (TestShardedMatchesSequential pins that); the arms differ only in
// wall-clock cost. cmd/benchjson -suite shard gates the construct
// phase's allocation budget and ratio, and — on runners with >= 4 procs
// (run the benchmark with -cpu 1,4) — the parallel-efficiency ratio of
// the shards=1 vs shards=4 run phases.
//
// The sharded arms thread one Arena per arm — the engine's documented
// sweep shape, where consecutive same-size constructions reuse the
// previous world's slabs. The sequential oracle has no arena path, so
// its arm measures the per-world allocation cost a sweep actually pays
// on that engine.
func BenchmarkShardedScaling(b *testing.B) {
	arms := []struct {
		name   string
		engine manet.Engine
		shards int
	}{
		{"engine=sequential", manet.EngineSequentialOracle, 0},
		{"shards=1", manet.EngineSharded, 1},
		{"shards=2", manet.EngineSharded, 2},
		{"shards=4", manet.EngineSharded, 4},
		{"shards=8", manet.EngineSharded, 8},
		// The mobile mega map is ineligible for speculation, so this arm
		// measures the speculative engine's graceful degradation: it must
		// track the shards=4 arm, paying nothing for the unused machinery.
		{"engine=speculative", manet.EngineSpeculative, 4},
	}
	for _, arm := range arms {
		arm := arm
		b.Run(arm.name, func(b *testing.B) {
			b.Run("phase=construct", func(b *testing.B) {
				var arena *manet.Arena
				if arm.engine != manet.EngineSequentialOracle {
					arena = manet.NewArena()
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					n, err := manet.New(shardedScalingConfig(arm.engine, arm.shards, arena, uint64(i+1)))
					if err != nil {
						b.Fatal(err)
					}
					// Release the worker pool outside the timed region; an
					// unrun network holds its goroutines until Close.
					b.StopTimer()
					n.Close()
					b.StartTimer()
				}
			})
			b.Run("phase=run", func(b *testing.B) {
				var events uint64
				var arena *manet.Arena
				if arm.engine != manet.EngineSequentialOracle {
					arena = manet.NewArena()
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					n, err := manet.New(shardedScalingConfig(arm.engine, arm.shards, arena, uint64(i+1)))
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					s := n.Run()
					events += s.Events
				}
				b.StopTimer()
				b.ReportMetric(float64(events)/float64(b.N), "events/op")
			})
		})
	}
}

// speculativeScalingWorld is the banded cluster placement the
// speculative benchmark runs: 8 clusters of 200 hosts each, round-robin
// over the 4 shard bands of a 20 km map, every cluster placed so its
// hosts' interaction disks stay strictly interior to their band (the
// guard covers the cluster half-extent plus the radio radius). A
// broadcast floods its own cluster — a dense local storm — and never
// reaches a shard border, so radio traffic in different bands is
// genuinely independent: the world a static campus/convoy deployment
// produces and the best case the speculative engine is built for.
func speculativeScalingWorld() []geom.Point {
	const (
		side    = 40 * 500.0 // MapUnits 40 at the default 500 m unit
		bands   = 4
		perBand = side / bands
		spread  = 450.0          // cluster half-extent, meters
		guard   = spread + 510.0 // + radio radius + drift margin
	)
	rng := sim.NewRNG(99)
	pts := make([]geom.Point, 0, 8*200)
	for c := 0; c < 8; c++ {
		base := float64(c%bands) * perBand
		cy := base + guard + rng.Float64()*(perBand-2*guard)
		cx := spread + 10 + rng.Float64()*(side-2*(spread+10))
		for i := 0; i < 200; i++ {
			pts = append(pts, geom.Point{
				X: cx + (rng.Float64()*2-1)*spread,
				Y: cy + (rng.Float64()*2-1)*spread,
			})
		}
	}
	return pts
}

// speculativeScalingConfig is the static cluster workload both
// BenchmarkSpeculativeWindows arms run, differing only in engine.
func speculativeScalingConfig(engine manet.Engine, pts []geom.Point, arena *manet.Arena, seed uint64) manet.Config {
	return manet.Config{
		Hosts:     len(pts),
		MapUnits:  40,
		Placement: pts,
		Static:    true,
		Scheme:    scheme.Flooding{},
		Requests:  40,
		Engine:    engine,
		Shards:    4,
		Arena:     arena,
		Seed:      seed,
	}
}

// BenchmarkSpeculativeWindows measures the speculative engine against
// the sharded engine's border lane on the static banded-cluster world.
// On a static world the sharded engine executes every event on the
// border lane — correct but sequential — while the speculative engine
// drains the same windows band-parallel over pooled micro-checkpoints,
// so the run-phase gap between the two arms is exactly the
// validate-or-replay machinery's net worth: lane parallelism minus the
// checkpoint, classification, and oracle-order commit overhead.
// cmd/benchjson -suite spec gates the ratio at >= 4 procs (run with
// -cpu 1,4) and derives events/sec for throughput comparison across
// arms. Both arms produce byte-identical summaries
// (TestSpeculativeMatchesSequential pins that).
func BenchmarkSpeculativeWindows(b *testing.B) {
	world := speculativeScalingWorld()
	arms := []struct {
		name   string
		engine manet.Engine
	}{
		{"engine=sharded", manet.EngineSharded},
		{"engine=speculative", manet.EngineSpeculative},
	}
	for _, arm := range arms {
		arm := arm
		b.Run(arm.name, func(b *testing.B) {
			b.Run("phase=construct", func(b *testing.B) {
				arena := manet.NewArena()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					n, err := manet.New(speculativeScalingConfig(arm.engine, world, arena, uint64(i+1)))
					if err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					n.Close()
					b.StartTimer()
				}
			})
			b.Run("phase=run", func(b *testing.B) {
				var events uint64
				var committed, speculated int
				arena := manet.NewArena()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					n, err := manet.New(speculativeScalingConfig(arm.engine, world, arena, uint64(i+1)))
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					s := n.Run()
					events += s.Events
					st := n.ParallelStats()
					committed += st.Committed
					speculated += st.Speculated
				}
				b.StopTimer()
				b.ReportMetric(float64(events)/float64(b.N), "events/op")
				if speculated > 0 {
					b.ReportMetric(float64(committed)/float64(speculated), "commit-rate")
				}
			})
		})
	}
}

// BenchmarkTelemetry measures the cost of the run-telemetry subsystem:
// the off arm leaves Config.Telemetry nil (the instrument points reduce
// to untaken branches, so it must match pre-instrumentation
// BenchmarkScaling timings), the on arm samples every series on the
// default tick plus the channel busy-time integral on every carrier
// transition.
func BenchmarkTelemetry(b *testing.B) {
	for _, mode := range []struct {
		name    string
		enabled bool
	}{{"off", false}, {"on", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := manet.Config{
					MapUnits: 5,
					Scheme:   scheme.AdaptiveCounter{},
					Requests: 10,
					Seed:     uint64(i + 1),
				}
				if mode.enabled {
					cfg.Telemetry = obs.New(0)
				}
				n, err := manet.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				n.Run()
			}
		})
	}
}

// BenchmarkGridQuery isolates the index itself: one full round of
// neighbor queries (every point asks for its unit-disk neighborhood,
// grid rebuild included) against the brute-force scan, at the paper's
// density.
func BenchmarkGridQuery(b *testing.B) {
	for _, n := range []int{100, 400, 1000, 4000} {
		rng := sim.NewRNG(1)
		side := 500 * math.Sqrt(float64(n)/4) // 4 hosts per 500m cell
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: rng.UniformFloat(0, side), Y: rng.UniformFloat(0, side)}
		}
		b.Run(fmt.Sprintf("n=%d/grid", n), func(b *testing.B) {
			b.ReportAllocs()
			var g geom.Grid
			var buf []int
			for i := 0; i < b.N; i++ {
				g.Rebuild(pts, 500)
				for j := range pts {
					buf = g.Neighbors(j, 500, buf[:0])
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/linear", n), func(b *testing.B) {
			b.ReportAllocs()
			var buf []int
			for i := 0; i < b.N; i++ {
				for j := range pts {
					buf = buf[:0]
					for k := range pts {
						if k != j && pts[k].Dist2(pts[j]) <= 500*500 {
							buf = append(buf, k)
						}
					}
				}
			}
		})
	}
}
