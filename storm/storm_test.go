package storm_test

import (
	"testing"

	"repro/storm"
)

// TestFacadeRun exercises the package end to end: parse a spec, run a
// small workload, and check the summary is sane — proving the aliases
// wire to the real simulator.
func TestFacadeRun(t *testing.T) {
	sch, err := storm.ParseScheme("counter:C=3")
	if err != nil {
		t.Fatal(err)
	}
	sum, err := storm.Run(sch, 1, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Broadcasts == 0 || sum.MeanRE <= 0 || sum.MeanRE > 1 {
		t.Fatalf("implausible summary: %+v", sum)
	}
}

// TestFacadeConfigInterop verifies storm.Config really is manet.Config:
// a value built through the facade, with a facade collector attached,
// drives the full simulator.
func TestFacadeConfigInterop(t *testing.T) {
	col := storm.NewCollector(100 * storm.Millisecond)
	n, err := storm.New(storm.Config{
		Scheme:    storm.AdaptiveCounter{},
		MapUnits:  1,
		Hosts:     20,
		Requests:  5,
		Seed:      7,
		Telemetry: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := n.Run()
	if sum.Broadcasts != 5 {
		t.Fatalf("Broadcasts = %d, want 5", sum.Broadcasts)
	}
	if len(col.Samples()) == 0 {
		t.Fatal("facade collector gathered no samples")
	}
}

// TestSchemeNamesParse checks every advertised name round-trips through
// ParseScheme.
func TestSchemeNamesParse(t *testing.T) {
	names := storm.SchemeNames()
	if len(names) == 0 {
		t.Fatal("no scheme names")
	}
	for _, name := range names {
		if _, err := storm.ParseScheme(name); err != nil {
			t.Errorf("ParseScheme(%q): %v", name, err)
		}
	}
	if len(storm.Schemes()) == 0 {
		t.Fatal("no scheme instances")
	}
}
