package storm_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/storm"
)

// baseEngineConfig is the workload every engine-selection variant below
// must reproduce byte-for-byte.
func baseEngineConfig(seed uint64) storm.Config {
	return storm.Config{
		Scheme: storm.AdaptiveCounter{}, MapUnits: 3, Hosts: 40, Requests: 10,
		Seed: seed,
	}
}

// TestEngineSelectorMatchesShims proves the redesigned engine-selection
// API is a pure facade change: the deprecated Disable* shim fields and
// every explicit Engine/Shards selection produce summaries
// byte-identical to the legacy default configuration.
func TestEngineSelectorMatchesShims(t *testing.T) {
	// Shared across seeds, so the second seed's run reuses the first's
	// slabs through the facade-level Arena plumbing.
	arena := storm.NewArena()
	for seed := uint64(1); seed <= 2; seed++ {
		ref, err := storm.New(baseEngineConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		want := ref.Run()

		variants := []struct {
			name string
			mut  func(*storm.Config)
		}{
			{"engine-auto", func(c *storm.Config) { c.Engine = storm.EngineAuto }},
			{"engine-sequential-oracle", func(c *storm.Config) { c.Engine = storm.EngineSequentialOracle }},
			{"engine-sharded", func(c *storm.Config) { c.Engine = storm.EngineSharded }},
			{"engine-sharded-arena", func(c *storm.Config) {
				c.Engine = storm.EngineSharded
				c.Arena = arena
			}},
			{"auto-shards-4", func(c *storm.Config) { c.Shards = 4 }},
			{"shim-ladder", func(c *storm.Config) { c.DisableLadderQueue = true }},
			{"shim-spatial", func(c *storm.Config) { c.DisableSpatialIndex = true }},
			{"shim-interference", func(c *storm.Config) { c.DisableInterferenceIndex = true }},
			{"shim-dense", func(c *storm.Config) { c.DisableDenseState = true }},
			{"shim-all", func(c *storm.Config) {
				c.Engine = storm.EngineSequentialOracle
				c.DisableLadderQueue = true
				c.DisableSpatialIndex = true
				c.DisableInterferenceIndex = true
				c.DisableDenseState = true
			}},
		}
		for _, v := range variants {
			t.Run(v.name, func(t *testing.T) {
				cfg := baseEngineConfig(seed)
				v.mut(&cfg)
				n, err := storm.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if got := n.Run(); got != want {
					t.Fatalf("seed %d: summary diverges from legacy default:\ngot:  %+v\nwant: %+v",
						seed, got, want)
				}
			})
		}
	}
}

// TestRunContextFacade covers the storm.RunContext wrapper: the Result
// metadata reflects the resolved engine, the summary matches Run, and
// cancellation both surfaces the context error and releases the sharded
// engine's worker goroutines (no leaks).
func TestRunContextFacade(t *testing.T) {
	cfg := baseEngineConfig(3)
	ref, err := storm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Run()

	seqRes, err := storm.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seqRes.Summary != want {
		t.Fatalf("RunContext summary diverges:\ngot:  %+v\nwant: %+v", seqRes.Summary, want)
	}
	if seqRes.Engine != storm.EngineSequentialOracle || seqRes.Shards != 0 {
		t.Fatalf("sequential Result metadata = %v/%d", seqRes.Engine, seqRes.Shards)
	}
	if seqRes.Elapsed <= 0 {
		t.Fatalf("non-positive elapsed %v", seqRes.Elapsed)
	}

	before := runtime.NumGoroutine()
	sh := cfg
	sh.Shards = 2
	shRes, err := storm.RunContext(context.Background(), sh)
	if err != nil {
		t.Fatal(err)
	}
	if shRes.Summary != want {
		t.Fatalf("sharded RunContext summary diverges:\ngot:  %+v\nwant: %+v", shRes.Summary, want)
	}
	if shRes.Engine != storm.EngineSharded || shRes.Shards != 2 {
		t.Fatalf("sharded Result metadata = %v/%d", shRes.Engine, shRes.Shards)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := storm.RunContext(ctx, sh); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunContext returned %v, want context.Canceled", err)
	}

	// The sharded runs' pool workers must all have exited.
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= before {
			break
		}
		if i > 100 {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
