package storm_test

import (
	"math"
	"strings"
	"testing"

	"repro/storm"
)

// TestConfigValidationErrors drives every option-validation error path
// through the public facade: a storm.Config IS a manet.Config, so the
// internal validator's diagnostics must surface from storm.New.
func TestConfigValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		cfg  storm.Config
		want string
	}{
		{"negative hosts", storm.Config{Hosts: -1}, "at least one host"},
		{"negative map", storm.Config{MapUnits: -3}, "at least 1x1"},
		{"negative radius", storm.Config{Radius: -500}, "radius must be positive"},
		{"negative requests", storm.Config{Requests: -1}, "negative request count"},
		{"negative slots", storm.Config{AssessmentSlots: -1}, "negative assessment slots"},
		{"negative groups", storm.Config{Groups: -2}, "negative group count"},
		{"groups and static", storm.Config{Groups: 2, Static: true}, "group mobility excludes"},
		{"placement mismatch", storm.Config{Hosts: 3, Static: true,
			Placement: []storm.Point{{X: 0, Y: 0}}}, "placement has 1 points"},
		{"loss rate", storm.Config{LossRate: 1.5}, "loss rate"},
		{"capture ratio", storm.Config{CaptureRatio: 0.5}, "capture ratio"},
		{"repair window", storm.Config{Repair: true, RepairWindow: -storm.Second}, "negative repair window"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			n, err := storm.New(tc.cfg)
			if err == nil {
				t.Fatalf("New(%+v) accepted an invalid config", tc.cfg)
			}
			if n != nil {
				t.Fatal("non-nil network alongside an error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParseSchemeErrors covers the spec-parsing failure paths the CLI
// tools rely on for diagnostics.
func TestParseSchemeErrors(t *testing.T) {
	for _, spec := range []string{"", "nosuchscheme", "counter:C=notanumber"} {
		if _, err := storm.ParseScheme(spec); err == nil {
			t.Errorf("ParseScheme(%q) succeeded", spec)
		}
	}
}

// TestEverySchemeSpecRuns pushes every advertised scheme spec through the
// whole public path: parse, configure, simulate, summarize.
func TestEverySchemeSpecRuns(t *testing.T) {
	names := storm.SchemeNames()
	if len(names) == 0 {
		t.Fatal("no scheme names advertised")
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			sch, err := storm.ParseScheme(name)
			if err != nil {
				t.Fatal(err)
			}
			n, err := storm.New(storm.Config{
				Scheme:   sch,
				MapUnits: 1,
				Hosts:    15,
				Requests: 3,
				Seed:     1,
			})
			if err != nil {
				t.Fatal(err)
			}
			sum := n.Run()
			if sum.Broadcasts != 3 {
				t.Fatalf("Broadcasts = %d, want 3", sum.Broadcasts)
			}
			if sum.MeanRE < 0 || sum.MeanRE > 1 {
				t.Fatalf("MeanRE = %g outside [0, 1]", sum.MeanRE)
			}
			if sum.Transmissions < 1 {
				t.Fatalf("no transmissions: %+v", sum)
			}
		})
	}
}

// TestQuickstartGolden pins the exact summary of the package-doc
// quickstart (storm.Run("ac", 5, 100, 1)). The simulator is
// deterministic, so any drift in these numbers means an unintended
// model change slipped in.
func TestQuickstartGolden(t *testing.T) {
	sch, err := storm.ParseScheme("ac")
	if err != nil {
		t.Fatal(err)
	}
	sum, err := storm.Run(sch, 5, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	intFields := []struct {
		name string
		got  int
		want int
	}{
		{"Broadcasts", sum.Broadcasts, 100},
		{"HelloSent", sum.HelloSent, 10831},
		{"Transmissions", sum.Transmissions, 16826},
		{"Deliveries", sum.Deliveries, 135518},
		{"Collisions", sum.Collisions, 23975},
		{"Events", int(sum.Events), 55847},
	}
	for _, f := range intFields {
		if f.got != f.want {
			t.Errorf("%s = %d, want %d", f.name, f.got, f.want)
		}
	}
	if math.Abs(sum.MeanRE-0.97134) > 1e-4 {
		t.Errorf("MeanRE = %g, want ~0.97134", sum.MeanRE)
	}
	if math.Abs(sum.MeanSRB-0.36174) > 1e-4 {
		t.Errorf("MeanSRB = %g, want ~0.36174", sum.MeanSRB)
	}
}

// TestAuditorOption attaches the invariant auditor through the facade
// and requires a clean, reconciled run with an unchanged summary.
func TestAuditorOption(t *testing.T) {
	base := storm.Config{
		Scheme:   storm.NeighborCoverage{},
		MapUnits: 1,
		Hosts:    20,
		Requests: 5,
		Seed:     3,
	}
	n, err := storm.New(base)
	if err != nil {
		t.Fatal(err)
	}
	plain := n.Run()

	a := storm.NewAuditor()
	cfg := base
	cfg.Audit = a
	an, err := storm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	audited := an.Run()

	if plain != audited {
		t.Errorf("auditor perturbed the facade run:\n off %+v\n on  %+v", plain, audited)
	}
	if err := a.Err(); err != nil {
		t.Error(err)
	}
	if !a.Ok() || a.Total() != 0 || len(a.Violations()) != 0 {
		t.Errorf("auditor not clean: total=%d violations=%v", a.Total(), a.Violations())
	}
}

// TestRoutingFacade runs a small route-discovery experiment through the
// facade aliases.
func TestRoutingFacade(t *testing.T) {
	n, err := storm.NewRouting(storm.RoutingConfig{
		Hosts:       30,
		MapUnits:    3,
		Static:      true,
		Scheme:      storm.AdaptiveCounter{},
		Discoveries: 5,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := n.Run()
	if r.Discoveries != 5 {
		t.Fatalf("Discoveries = %d, want 5", r.Discoveries)
	}
}

// TestSmallHelpers covers the remaining façade surface: the RNG
// constructor, usage text, and the paper's speed rule.
func TestSmallHelpers(t *testing.T) {
	rng := storm.NewRNG(42)
	if rng == nil {
		t.Fatal("NewRNG returned nil")
	}
	if v := rng.Float64(); v < 0 || v >= 1 {
		t.Fatalf("Float64 = %g outside [0, 1)", v)
	}
	usage := storm.SchemeUsage()
	for _, name := range storm.SchemeNames() {
		if !strings.Contains(usage, name) {
			t.Errorf("usage text missing scheme %q", name)
		}
	}
	if got := storm.PaperMaxSpeedKMH(5); got != 50 {
		t.Fatalf("PaperMaxSpeedKMH(5) = %g, want 50", got)
	}
}
