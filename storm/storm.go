// Package storm is the public face of the broadcast-storm reproduction.
// It re-exports the handful of types and functions programs need —
// configuration, schemes, the simulator entry points, metrics, and run
// telemetry — so that examples and downstream code import one package
// instead of reaching into internal/ layers.
//
// Quick start:
//
//	sch, _ := storm.ParseScheme("ac")
//	sum, err := storm.Run(sch, 5, 100, 1)
//
// or, with full control over the configuration:
//
//	n, err := storm.New(storm.Config{Scheme: storm.AdaptiveCounter{}, MapUnits: 7})
//	sum := n.Run()
//
// Everything here is an alias or thin wrapper: a storm.Config IS a
// manet.Config, so values flow freely between this package and code
// (such as internal/experiment) that uses the internal layers directly.
package storm

import (
	"context"
	"io"
	"time"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/manet"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// Simulation configuration and results.
type (
	// Config configures one broadcast-storm simulation (see manet.Config
	// for every knob; the zero value of most fields means "paper default").
	Config = manet.Config
	// Network is a configured simulation; call Run or RunContext to
	// execute it.
	Network = manet.Network
	// Summary holds the paper's metrics (RE, SRB, latency, ...) for a run.
	Summary = metrics.Summary
	// HelloMode selects how hosts run neighbor discovery.
	HelloMode = manet.HelloMode
	// Engine selects the simulation engine (sequential oracle, the
	// spatially sharded engine, or the speculative validate-or-replay
	// engine); all engines produce byte-identical summaries. Select via
	// Config.Engine and Config.Shards.
	Engine = manet.Engine
	// ParallelStats reports how a sharded or speculative run executed
	// its barrier windows (Network.ParallelStats).
	ParallelStats = manet.ParallelStats
	// Features describes the data-structure and parallelism choices an
	// engine resolves to (Config.EngineFeatures, Engine.Features).
	Features = manet.Features
)

// Rebroadcast schemes. Scheme is the interface; the concrete types are
// the paper's suppression policies.
type (
	Scheme           = scheme.Scheme
	Flooding         = scheme.Flooding
	Probabilistic    = scheme.Probabilistic
	Counter          = scheme.Counter
	Distance         = scheme.Distance
	Location         = scheme.Location
	Cluster          = scheme.Cluster
	AdaptiveCounter  = scheme.AdaptiveCounter
	AdaptiveLocation = scheme.AdaptiveLocation
	NeighborCoverage = scheme.NeighborCoverage
	// CounterFunc and LocationFunc are the adaptive schemes' threshold
	// functions C(n) and A(n).
	CounterFunc  = scheme.CounterFunc
	LocationFunc = scheme.LocationFunc
)

// Identities, geometry, and simulated time.
type (
	Point       = geom.Point
	NodeID      = packet.NodeID
	BroadcastID = packet.BroadcastID
	Time        = sim.Time
	Duration    = sim.Duration
	RNG         = sim.RNG
)

// Route-discovery experiments (AODV-lite over the storm substrate).
type (
	RoutingConfig  = routing.Config
	RoutingNetwork = routing.Network
	RoutingResult  = routing.Result
)

// Collector gathers run telemetry; attach one via Config.Telemetry.
type Collector = obs.Collector

// Auditor is the runtime invariant auditor; attach one via Config.Audit
// to have every event of a run checked for conservation-law violations
// (packet accounting, scheduler order, pool lifecycle, neighbor-table
// soundness, metric sanity). Auditing is observation-only: the Summary
// is byte-identical with or without it. Inspect Err, Ok, or Violations
// after the run.
type Auditor = check.Auditor

// Violation is one invariant breach an Auditor observed.
type Violation = check.Violation

// Simulated-time units.
const (
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
)

// Hello modes.
const (
	HelloOff     = manet.HelloOff
	HelloFixed   = manet.HelloFixed
	HelloDynamic = manet.HelloDynamic
)

// Engines (see Config.Engine). EngineAuto — the zero value — resolves
// to the sharded engine when Config.Shards > 0 and to the sequential
// oracle otherwise, so existing configurations keep their behavior.
const (
	EngineAuto             = manet.EngineAuto
	EngineSequentialOracle = manet.EngineSequentialOracle
	EngineSharded          = manet.EngineSharded
	// EngineSpeculative is the sharded engine with optimistic radio
	// windows on static worlds: barrier windows execute band-parallel
	// over an in-memory micro-checkpoint and either validate (commit in
	// oracle order) or roll back and replay sequentially. Summaries stay
	// byte-identical to the oracle either way.
	EngineSpeculative = manet.EngineSpeculative
	// DefaultShards is the shard count EngineSharded uses when
	// Config.Shards is zero.
	DefaultShards = manet.DefaultShards
)

// ParseEngine maps an engine name ("auto", "sequential-oracle",
// "sharded", "speculative") onto an Engine, the way the cmd tools
// accept it.
func ParseEngine(name string) (Engine, error) { return manet.ParseEngine(name) }

// Arena retains the sharded engine's bulk allocations across runs; pass
// one through Config.Arena when sweeping many same-size worlds. See
// manet.Arena for the ownership contract.
type Arena = manet.Arena

// NewArena returns an empty arena for Config.Arena.
func NewArena() *Arena { return manet.NewArena() }

// Result wraps a run's Summary with how it was executed: the wall-clock
// time the run took and the engine and shard count the configuration
// resolved to.
type Result struct {
	Summary Summary
	Elapsed time.Duration // wall-clock run time (excludes network construction)
	Engine  Engine        // resolved engine (never EngineAuto)
	Shards  int           // resolved shard count, 0 for sequential engines
}

// RunContext builds a network from cfg and executes it under ctx. The
// run checks ctx cooperatively at the engine's conservative barrier
// windows — never inside an event — and on cancellation returns ctx's
// error with a zero Result; worker pools are released either way.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	n, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	sum, err := n.RunContext(ctx)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Summary: sum,
		Elapsed: time.Since(start),
		Engine:  n.Engine(),
		Shards:  n.ShardCount(),
	}, nil
}

// New builds a simulation network from a validated configuration.
func New(cfg Config) (*Network, error) { return manet.New(cfg) }

// Run simulates one broadcast workload with the paper's defaults: hosts
// roaming a units x units map, issuing requests broadcasts under sch.
func Run(sch Scheme, units, requests int, seed uint64) (Summary, error) {
	return core.Run(sch, units, requests, seed)
}

// Schemes returns one representative instance of every scheme in the
// study, in the paper's presentation order.
func Schemes() []Scheme { return core.Schemes() }

// ParseScheme builds a scheme from its textual spec (e.g. "flooding",
// "counter:C=3", "al:n1=6,n2=12") — the same syntax every cmd tool uses.
func ParseScheme(spec string) (Scheme, error) { return scheme.Parse(spec) }

// SchemeNames returns the canonical spec names ParseScheme accepts.
func SchemeNames() []string { return scheme.Names() }

// SchemeUsage returns a multi-line description of the spec syntax.
func SchemeUsage() string { return scheme.Usage() }

// NewRouting builds a route-discovery experiment network.
func NewRouting(cfg RoutingConfig) (*RoutingNetwork, error) { return routing.New(cfg) }

// NewRNG returns the simulator's deterministic random source.
func NewRNG(seed uint64) *RNG { return sim.NewRNG(seed) }

// NewCollector creates a telemetry collector sampling every tick of
// simulated time (tick <= 0 uses the default).
func NewCollector(tick Duration) *Collector { return obs.New(tick) }

// NewAuditor creates a runtime invariant auditor for one run; attach it
// via Config.Audit.
func NewAuditor() *Auditor { return check.New() }

// PaperMaxSpeedKMH is the paper's speed rule: 10 km/h per map unit.
func PaperMaxSpeedKMH(units int) float64 { return manet.PaperMaxSpeedKMH(units) }

// Checkpoint is the decoded form of a run checkpoint; RestoreCheckpoint
// resumes from one (decode with ReadCheckpoint), and a single decoded
// document can seed several diverging what-if runs.
type Checkpoint = snapshot.Checkpoint

// ReadCheckpoint decodes a checkpoint document from r (the inverse of
// Network.Checkpoint). The codec is strict: truncated, trailing, or
// non-canonical input is an error.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) { return snapshot.Read(r) }

// RestoreNetwork reads a checkpoint written by Network.Checkpoint and
// rebuilds the network it captured, ready for Run/RunContext to carry
// the simulation to completion. cfg must be the configuration of the
// checkpointed run (engine and shard choices may differ only in how
// they are spelled, not in what they resolve to); a contradictory
// configuration is an error, never a silent divergence. The resumed
// run's Summary is byte-identical to the uninterrupted run's.
func RestoreNetwork(r io.Reader, cfg Config) (*Network, error) {
	return manet.RestoreNetwork(r, cfg)
}

// RestoreCheckpoint rebuilds a network from an already-decoded
// checkpoint document. Restoring the same document several times forks
// the captured instant: combined with Network.DivergeSeed, each fork
// explores a different future of the identical past.
func RestoreCheckpoint(ck *Checkpoint, cfg Config) (*Network, error) {
	return manet.RestoreCheckpoint(ck, cfg)
}
