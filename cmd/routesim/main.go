// Command routesim runs AODV-lite route-discovery experiments over the
// broadcast-storm substrate: route requests are disseminated under a
// chosen suppression scheme; route replies unicast back with 802.11
// DATA/ACK (and optional RTS/CTS).
//
//	routesim -scheme ac -map 5 -discoveries 100
//	routesim -scheme flooding -ring 2,0      # expanding-ring search
//	routesim -scheme nc -rts 1               # RTS/CTS on replies
//
// Schemes are given as registry specs (run with -schemes for syntax).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/routing"
	"repro/internal/scheme"
)

func main() {
	var (
		schemeSpec  = flag.String("scheme", "flooding", "scheme spec, e.g. counter:C=3 (run -schemes for syntax)")
		listSchemes = flag.Bool("schemes", false, "print the scheme spec syntax and exit")
		mapUnits    = flag.Int("map", 5, "square map side in 500m units")
		hosts       = flag.Int("hosts", 100, "number of mobile hosts")
		discoveries = flag.Int("discoveries", 50, "route discoveries to attempt")
		speed       = flag.Float64("speed", 0, "max host speed km/h (0 = paper rule)")
		static      = flag.Bool("static", false, "freeze hosts")
		rts         = flag.Int("rts", 0, "RTS/CTS threshold in bytes for unicast replies (0 = off)")
		ring        = flag.String("ring", "", "expanding-ring TTLs, comma separated (e.g. 2,0); empty = full flood")
		data        = flag.Int("data", 0, "data packets to push along each established route (route maintenance)")
		seed        = flag.Uint64("seed", 1, "random seed")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	if *listSchemes {
		fmt.Print("scheme specs:\n", scheme.Usage())
		return
	}

	sch, err := scheme.Parse(*schemeSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "routesim:", err)
		os.Exit(2)
	}

	stopProf, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "routesim:", err)
		os.Exit(1)
	}

	var ttls []int
	if *ring != "" {
		for _, part := range strings.Split(*ring, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v < 0 {
				fmt.Fprintf(os.Stderr, "routesim: bad -ring value %q\n", part)
				os.Exit(2)
			}
			ttls = append(ttls, v)
		}
	}

	n, err := routing.New(routing.Config{
		Hosts:        *hosts,
		MapUnits:     *mapUnits,
		MaxSpeedKMH:  *speed,
		Static:       *static,
		Scheme:       sch,
		Discoveries:  *discoveries,
		RTSThreshold: *rts,
		RingTTLs:     ttls,
		DataPerRoute: *data,
		Seed:         *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "routesim:", err)
		os.Exit(1)
	}
	r := n.Run()

	fmt.Printf("scheme                  %s\n", sch.Name())
	fmt.Printf("discoveries             %d\n", r.Discoveries)
	fmt.Printf("target reached          %d (%.1f%%)\n",
		r.TargetReached, 100*float64(r.TargetReached)/float64(max(1, r.Discoveries)))
	fmt.Printf("routes established      %d (%.1f%%)\n", r.Succeeded, 100*r.SuccessRate())
	fmt.Printf("mean route length       %.2f hops\n", r.MeanRouteHops)
	fmt.Printf("mean discovery latency  %.1f ms\n", r.MeanDiscoveryLatency.Milliseconds())
	fmt.Printf("RREQ tx per discovery   %.1f\n", r.RequestsPerDiscovery())
	fmt.Printf("ring escalations        %d\n", r.RingEscalations)
	fmt.Printf("RREP retries / drops    %d / %d\n", r.UnicastRetries, r.UnicastDrops)
	fmt.Printf("replies dropped (no reverse route)  %d\n", r.RepliesDropped)
	if r.DataSent > 0 {
		fmt.Printf("data sent / delivered   %d / %d (%.1f%%)\n",
			r.DataSent, r.DataDelivered, 100*float64(r.DataDelivered)/float64(r.DataSent))
		fmt.Printf("path breaks             %d\n", r.PathBreaks)
	}
	fmt.Printf("hello packets           %d\n", r.HelloSent)
	fmt.Printf("total tx / collisions   %d / %d\n", r.Transmissions, r.Collisions)

	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "routesim:", err)
		os.Exit(1)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
