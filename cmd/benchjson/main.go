// Command benchjson converts `go test -bench` output into a machine-
// readable JSON record and enforces the zero-allocation event core's
// budgets. CI pipes the benchmark-smoke output through it:
//
//	go test -run '^$' -bench . -benchtime 20x . | benchjson -out BENCH_5.json
//
// The exit status is nonzero when a budgeted benchmark is missing from
// the input or exceeds its budget, so a regression (or a silent rename
// that would stop the budget from being checked) fails the build:
//
//   - BenchmarkScheduler/queue=ladder must report 0 allocs/op: the
//     steady-state schedule→fire cycle runs entirely off the event
//     free-list.
//   - BenchmarkBroadcastSim/queue=ladder must report at most 1
//     allocs/event across a full end-to-end simulation.
//   - BenchmarkSaturatedChannel/engine=localized must report at most 1
//     allocs/event with tens of transmissions concurrently on the air.
//
// A second budget suite (-suite mega) gates the mega-scale smoke run
// instead: BenchmarkMegaScale/hosts=100000 must keep its run-phase
// allocation (run-bytes/op) under a fixed ceiling, pinning the
// O(active-state) memory behavior of the dense host/record layout.
//
// A third suite (-suite shard) gates the sharded engine's scaling run,
// phase by phase: the 4-shard construct phase must beat the sequential
// oracle's construct phase by >= 2.5x and stay within the arena-reuse
// allocation budget (the allocation win), and — separately, so the two
// claims cannot be conflated — the shards=4 run phase must beat the
// shards=1 run phase by >= 2x when the benchmark ran with at least 4
// procs (the parallel-execution win; run the benchmark with -cpu 1,4).
// On fewer procs the parallel gate reports itself skipped instead of
// passing vacuously. Ratio gates are self-normalizing — both arms run
// on the same machine in the same process, so the gate holds on slow CI
// runners and fast workstations alike.
//
// A fourth suite (-suite spec) gates the speculative engine on the
// static banded-cluster world: the speculative run phase must beat the
// sharded engine's border-lane run phase by >= 1.3x at >= 4 procs (on
// a static world the border lane is fully sequential, so the ratio is
// the net worth of validate-or-replay windows), and its run-phase
// allocation must stay within the pooled micro-checkpoint budget — a
// slide back to per-segment document or lane-event allocation would
// overshoot it several-fold.
//
// For every parsed result that reports both ns/op and events/op, an
// events/sec metric is derived (events/op / seconds/op) and written to
// the JSON record, so run-phase throughput is comparable across arms
// and machines without post-processing.
//
// With -baseline, the new results are additionally gated against a
// previously committed bench JSON: any benchmark present in both files
// whose ns/op exceeds baseline x tolerance fails the run, so a timing
// regression on the pinned kernels cannot land silently. (The gate is
// one-sided; getting faster never fails.)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line. Metrics holds every reported
// unit — the standard ns/op, B/op, and allocs/op plus custom
// b.ReportMetric units such as allocs/event and events/op.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// budget is an upper bound on one metric of one benchmark. The name is
// matched with the trailing -GOMAXPROCS suffix stripped.
type budget struct {
	Bench  string
	Metric string
	Max    float64
}

// suites groups budgets by the CI step that produces their input, so a
// step that runs only its own benchmarks is not failed for the other
// step's budgets being "missing". The core suite pins the event-loop
// allocation budgets; the mega suite pins the mega-scale run's memory
// footprint — run-time allocation must stay O(active state), so a
// regression back to per-broadcast retention (which would add ~hosts x
// requests bytes) trips the bound by orders of magnitude.
var suites = map[string][]budget{
	"core": {
		{"BenchmarkScheduler/queue=ladder", "allocs/op", 0},
		{"BenchmarkBroadcastSim/queue=ladder", "allocs/event", 1},
		{"BenchmarkSaturatedChannel/engine=localized", "allocs/event", 1},
	},
	"mega": {
		{"BenchmarkMegaScale/hosts=100000", "run-bytes/op", 32e6},
	},
	"shard": {
		// Steady-state arena reuse keeps sharded construction off the
		// allocator entirely; the residue is one amortized fresh build.
		// A slide back to per-host construction allocation would add
		// ~10 allocs/host (1M/op) and overshoot this by an order of
		// magnitude.
		{"BenchmarkShardedScaling/shards=4/phase=construct", "allocs/op", 100_000},
	},
	"spec": {
		// The speculative run phase reuses one pooled micro-checkpoint
		// document and circulates lane events through the scheduler free
		// lists; observed steady state is ~86k allocs/op. Per-segment
		// document allocation (fresh host slots, dedup and record slices
		// every window) measured ~267k allocs/op before pooling, so a
		// pooling regression overshoots this bound severalfold.
		{"BenchmarkSpeculativeWindows/engine=speculative/phase=run", "allocs/op", 150_000},
	},
}

// ratioBudget is a lower bound on the ratio of one metric between two
// benchmarks from the same run, Num's value over Den's. Ratios compare
// arms measured back to back in one process, so they gate relative
// performance without pinning absolute timings to a machine class.
// MinProcs > 1 restricts the gate to results produced at that
// GOMAXPROCS or higher (the -cpu axis), pairing numerator and
// denominator at the same proc count; when no qualifying proc count ran
// both arms, the gate is reported as skipped, never silently passed.
type ratioBudget struct {
	Num      string
	Den      string
	Metric   string
	Min      float64
	MinProcs int
}

// ratioSuites attaches ratio gates to the suite that runs both arms.
// The shard suite enforces two separate contracts: construction's
// arena/slab win over the sequential oracle, and the run phase's
// parallel-execution win of four shard workers over one — the latter
// only meaningful (and only enforced) when the process actually has 4
// cores to spend.
var ratioSuites = map[string][]ratioBudget{
	"shard": {
		{Num: "BenchmarkShardedScaling/engine=sequential/phase=construct",
			Den: "BenchmarkShardedScaling/shards=4/phase=construct", Metric: "ns/op", Min: 2.5},
		{Num: "BenchmarkShardedScaling/shards=1/phase=run",
			Den: "BenchmarkShardedScaling/shards=4/phase=run", Metric: "ns/op", Min: 2.0, MinProcs: 4},
	},
	// The spec suite's single gate is the speculative engine's reason to
	// exist: on a static banded-cluster world where every radio event
	// lands in the sharded engine's sequential border lane, speculative
	// windows must convert the idle cores into >= 1.3x end-to-end run
	// speedup. Both arms simulate the identical world, so the ratio nets
	// out snapshot, validation, and the occasional rollback replay.
	"spec": {
		{Num: "BenchmarkSpeculativeWindows/engine=sharded/phase=run",
			Den: "BenchmarkSpeculativeWindows/engine=speculative/phase=run", Metric: "ns/op", Min: 1.3, MinProcs: 4},
	},
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the whole program behind an injectable boundary (flags, input,
// and both output streams), so tests can drive every exit path without
// spawning a process. The return value is the process exit status.
func run(argv []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fatal := func(err error) int {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "benchmark output to read (default stdin)")
	out := fs.String("out", "", "JSON file to write (required)")
	baseline := fs.String("baseline", "", "previous bench JSON to gate ns/op against (optional)")
	tolerance := fs.Float64("tolerance", 1.5, "allowed ns/op growth factor over the baseline")
	suite := fs.String("suite", "core", "budget suite to enforce (core, mega, shard, or spec)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *out == "" {
		fmt.Fprintln(stderr, "benchjson: -out is required")
		fs.Usage()
		return 2
	}
	if *tolerance <= 0 {
		fmt.Fprintln(stderr, "benchjson: -tolerance must be positive")
		return 2
	}
	budgets, ok := suites[*suite]
	if !ok {
		fmt.Fprintf(stderr, "benchjson: unknown -suite %q\n", *suite)
		return 2
	}
	// Read the baseline before writing -out, so pointing both flags at
	// the same path (CI regenerating the committed file in place)
	// compares against the previous contents.
	var base []Result
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			return fatal(err)
		}
		if err := json.Unmarshal(data, &base); err != nil {
			return fatal(fmt.Errorf("baseline %s: %v", *baseline, err))
		}
	}

	src := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return fatal(err)
		}
		defer f.Close()
		src = f
	}
	results, err := parse(src)
	if err != nil {
		return fatal(err)
	}
	if len(results) == 0 {
		return fatal(fmt.Errorf("no benchmark lines found in input"))
	}
	derive(results)
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return fatal(err)
	}
	fmt.Fprintf(stdout, "benchjson: wrote %d results to %s\n", len(results), *out)

	violations := enforce(results, budgets)
	ratioViolations, notes := enforceRatios(results, ratioSuites[*suite])
	violations = append(violations, ratioViolations...)
	for _, n := range notes {
		fmt.Fprintln(stdout, "benchjson:", n)
	}
	for _, v := range violations {
		fmt.Fprintln(stderr, "benchjson: BUDGET EXCEEDED:", v)
	}
	regressions := compare(results, base, *tolerance)
	for _, r := range regressions {
		fmt.Fprintln(stderr, "benchjson: REGRESSION:", r)
	}
	if len(violations)+len(regressions) > 0 {
		return 1
	}
	if *baseline != "" {
		fmt.Fprintf(stdout, "benchjson: ns/op within %gx of baseline %s\n", *tolerance, *baseline)
	}
	fmt.Fprintln(stdout, "benchjson: all allocation budgets met")
	return 0
}

// compare gates new results against a baseline run: every benchmark
// present in both (names matched with the -GOMAXPROCS suffix stripped)
// must keep its ns/op within tolerance x the baseline value. Benchmarks
// only in one file are ignored — adding or retiring a benchmark is not a
// regression.
func compare(results, base []Result, tolerance float64) []string {
	if len(base) == 0 {
		return nil
	}
	baseNs := make(map[string]float64, len(base))
	for _, r := range base {
		if v, ok := r.Metrics["ns/op"]; ok {
			baseNs[stripProcs(r.Name)] = v
		}
	}
	var regressions []string
	for _, r := range results {
		old, ok := baseNs[stripProcs(r.Name)]
		if !ok || old <= 0 {
			continue
		}
		v, ok := r.Metrics["ns/op"]
		if !ok {
			continue
		}
		if v > old*tolerance {
			regressions = append(regressions,
				fmt.Sprintf("%s: ns/op = %g, baseline %g (x%.2f > allowed x%g)",
					r.Name, v, old, v/old, tolerance))
		}
	}
	return regressions
}

// parse extracts benchmark result lines of the form
//
//	BenchmarkName-8   1000   61.15 ns/op   0 B/op   0 allocs/op
//
// where the fields after the iteration count alternate value/unit.
func parse(r io.Reader) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "BenchmarkX ... --- FAIL" lines
		}
		res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parse %q: bad value %q", fields[0], fields[i])
			}
			res.Metrics[fields[i+1]] = v
		}
		results = append(results, res)
	}
	return results, sc.Err()
}

// derive adds computed metrics to parsed results. Any benchmark that
// reports both ns/op and an events/op work counter (the simulator's
// run-phase arms do) gains events/sec — absolute throughput comparable
// across arms and machines without a calculator. Results already
// carrying events/sec (a re-parsed JSON round trip) are left alone.
func derive(results []Result) {
	for _, r := range results {
		ns, okNs := r.Metrics["ns/op"]
		ev, okEv := r.Metrics["events/op"]
		if !okNs || !okEv || ns <= 0 {
			continue
		}
		if _, done := r.Metrics["events/sec"]; done {
			continue
		}
		r.Metrics["events/sec"] = ev / (ns * 1e-9)
	}
}

// enforce checks every budget against the parsed results and returns the
// violations (including budgets whose benchmark never ran).
func enforce(results []Result, budgets []budget) []string {
	var violations []string
	for _, b := range budgets {
		found := false
		for _, r := range results {
			if stripProcs(r.Name) != b.Bench {
				continue
			}
			found = true
			v, ok := r.Metrics[b.Metric]
			if !ok {
				violations = append(violations,
					fmt.Sprintf("%s did not report %s", r.Name, b.Metric))
				continue
			}
			if v > b.Max {
				violations = append(violations,
					fmt.Sprintf("%s: %s = %g, budget %g", r.Name, b.Metric, v, b.Max))
			}
		}
		if !found {
			violations = append(violations,
				fmt.Sprintf("%s (%s budget) missing from benchmark output", b.Bench, b.Metric))
		}
	}
	return violations
}

// enforceRatios checks every ratio gate against the parsed results and
// returns the violations, including gates whose arms never ran or never
// reported the gated metric — a renamed arm must fail loudly, not
// silently stop being gated. Gates with MinProcs pair their arms at
// each GOMAXPROCS value (the -cpu axis) and enforce only the qualifying
// proc counts; when none qualify — the host has fewer cores than the
// gate needs — the gate is reported in notes as skipped rather than
// passed or failed.
func enforceRatios(results []Result, ratios []ratioBudget) (violations, notes []string) {
	// metric returns the gated metric for each proc count the benchmark
	// ran at.
	metric := func(bench, unit string) map[int]float64 {
		byProcs := map[int]float64{}
		for _, r := range results {
			if stripProcs(r.Name) != bench {
				continue
			}
			if v, ok := r.Metrics[unit]; ok {
				byProcs[procsOf(r.Name)] = v
			}
		}
		return byProcs
	}
	for _, rb := range ratios {
		num := metric(rb.Num, rb.Metric)
		den := metric(rb.Den, rb.Metric)
		switch {
		case len(num) == 0:
			violations = append(violations,
				fmt.Sprintf("%s (%s ratio numerator) missing from benchmark output", rb.Num, rb.Metric))
			continue
		case len(den) == 0:
			violations = append(violations,
				fmt.Sprintf("%s (%s ratio denominator) missing from benchmark output", rb.Den, rb.Metric))
			continue
		}
		enforced := false
		for procs, n := range num {
			d, ok := den[procs]
			if !ok || procs < rb.MinProcs {
				continue
			}
			enforced = true
			switch {
			case d <= 0:
				violations = append(violations,
					fmt.Sprintf("%s: %s = %g, cannot form ratio", rb.Den, rb.Metric, d))
			case n/d < rb.Min:
				violations = append(violations,
					fmt.Sprintf("%s / %s (procs=%d): %s ratio %.2f below required %g",
						rb.Num, rb.Den, procs, rb.Metric, n/d, rb.Min))
			}
		}
		if !enforced {
			notes = append(notes,
				fmt.Sprintf("SKIPPED: %s / %s ratio gate needs both arms at >= %d procs (run with -cpu %d)",
					rb.Num, rb.Den, rb.MinProcs, rb.MinProcs))
		}
	}
	return violations, notes
}

// stripProcs removes the -GOMAXPROCS suffix go test appends to names.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// procsOf extracts the GOMAXPROCS a result ran at; go test omits the
// suffix when it is 1.
func procsOf(name string) int {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return 1
	}
	p, err := strconv.Atoi(name[i+1:])
	if err != nil || p < 1 {
		return 1
	}
	return p
}
