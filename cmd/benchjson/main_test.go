package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
BenchmarkScheduler/queue=ladder-8         	 1000000	        61.15 ns/op	       0 B/op	       0 allocs/op
BenchmarkScheduler/queue=heap-8           	  500000	       379.6 ns/op	      48 B/op	       1 allocs/op
BenchmarkBroadcastSim/queue=ladder-8      	      20	  15784327 ns/op	         0.886 allocs/event	     13063 events/op	 1128678 B/op	   11570 allocs/op
PASS
`

func TestParse(t *testing.T) {
	results, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}
	sim := results[2]
	if sim.Name != "BenchmarkBroadcastSim/queue=ladder-8" || sim.Iterations != 20 {
		t.Fatalf("identity: %+v", sim)
	}
	for unit, want := range map[string]float64{
		"ns/op": 15784327, "allocs/event": 0.886, "events/op": 13063, "allocs/op": 11570,
	} {
		if got := sim.Metrics[unit]; got != want {
			t.Errorf("%s = %g, want %g", unit, got, want)
		}
	}
}

func TestEnforcePasses(t *testing.T) {
	results, _ := parse(strings.NewReader(sample))
	if v := enforce(results); len(v) != 0 {
		t.Fatalf("budgets violated on passing input: %v", v)
	}
}

func TestEnforceCatchesRegression(t *testing.T) {
	bad := strings.Replace(sample,
		"0.886 allocs/event", "1.52 allocs/event", 1)
	results, _ := parse(strings.NewReader(bad))
	v := enforce(results)
	if len(v) != 1 || !strings.Contains(v[0], "allocs/event") {
		t.Fatalf("violations = %v, want one allocs/event breach", v)
	}
}

func TestEnforceCatchesMissingBenchmark(t *testing.T) {
	results, _ := parse(strings.NewReader("BenchmarkOther-8 10 5 ns/op\n"))
	if v := enforce(results); len(v) != len(budgets) {
		t.Fatalf("violations = %v, want every budgeted benchmark reported missing", v)
	}
}

func TestStripProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkScheduler/queue=ladder-8": "BenchmarkScheduler/queue=ladder",
		"BenchmarkScheduler/queue=ladder":   "BenchmarkScheduler/queue=ladder",
		"BenchmarkX-foo":                    "BenchmarkX-foo",
	} {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
