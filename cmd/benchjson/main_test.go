package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
BenchmarkScheduler/queue=ladder-8         	 1000000	        61.15 ns/op	       0 B/op	       0 allocs/op
BenchmarkScheduler/queue=heap-8           	  500000	       379.6 ns/op	      48 B/op	       1 allocs/op
BenchmarkBroadcastSim/queue=ladder-8      	      20	  15784327 ns/op	         0.886 allocs/event	     13063 events/op	 1128678 B/op	   11570 allocs/op
BenchmarkSaturatedChannel/engine=localized-8 	       5	  11336093 ns/op	         0.004 allocs/event	      2984 tx/op	    1408 B/op	      11 allocs/op
BenchmarkSaturatedChannel/engine=legacy-8 	       5	  25221276 ns/op	         0.004 allocs/event	      2984 tx/op	    1356 B/op	      10 allocs/op
PASS
`

func TestParse(t *testing.T) {
	results, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("parsed %d results, want 5", len(results))
	}
	sim := results[2]
	if sim.Name != "BenchmarkBroadcastSim/queue=ladder-8" || sim.Iterations != 20 {
		t.Fatalf("identity: %+v", sim)
	}
	for unit, want := range map[string]float64{
		"ns/op": 15784327, "allocs/event": 0.886, "events/op": 13063, "allocs/op": 11570,
	} {
		if got := sim.Metrics[unit]; got != want {
			t.Errorf("%s = %g, want %g", unit, got, want)
		}
	}
}

func TestEnforcePasses(t *testing.T) {
	results, _ := parse(strings.NewReader(sample))
	if v := enforce(results, suites["core"]); len(v) != 0 {
		t.Fatalf("budgets violated on passing input: %v", v)
	}
}

func TestEnforceCatchesRegression(t *testing.T) {
	bad := strings.Replace(sample,
		"0.886 allocs/event", "1.52 allocs/event", 1)
	results, _ := parse(strings.NewReader(bad))
	v := enforce(results, suites["core"])
	if len(v) != 1 || !strings.Contains(v[0], "allocs/event") {
		t.Fatalf("violations = %v, want one allocs/event breach", v)
	}
}

func TestEnforceCatchesMissingBenchmark(t *testing.T) {
	results, _ := parse(strings.NewReader("BenchmarkOther-8 10 5 ns/op\n"))
	if v := enforce(results, suites["core"]); len(v) != len(suites["core"]) {
		t.Fatalf("violations = %v, want every budgeted benchmark reported missing", v)
	}
}

const megaSample = "BenchmarkMegaScale/hosts=100000-8 1 64992382 ns/op 24211 events/op 15051680 run-bytes/op 152478 allocs/op\n"

func TestEnforceMegaSuite(t *testing.T) {
	results, _ := parse(strings.NewReader(megaSample))
	if v := enforce(results, suites["mega"]); len(v) != 0 {
		t.Fatalf("mega budgets violated on passing input: %v", v)
	}
	// A regression to per-broadcast retention would add ~hosts x requests
	// bytes; model it as a 10x memory jump and require the gate to trip.
	blown := strings.Replace(megaSample, "15051680 run-bytes/op", "150516800 run-bytes/op", 1)
	results, _ = parse(strings.NewReader(blown))
	v := enforce(results, suites["mega"])
	if len(v) != 1 || !strings.Contains(v[0], "run-bytes/op") {
		t.Fatalf("violations = %v, want one run-bytes/op breach", v)
	}
}

// shardSample mimics a -cpu 1,4 run: every arm appears once without a
// procs suffix (GOMAXPROCS=1) and once with -4. The parallel-efficiency
// gate (MinProcs: 4) must only judge the -4 pair — at one proc the
// shards=4 run phase is legitimately no faster than shards=1.
const shardSample = `BenchmarkShardedScaling/engine=sequential/phase=construct 5 312000000 ns/op 1129573 allocs/op
BenchmarkShardedScaling/engine=sequential/phase=run 5 231706353 ns/op 27054 events/op
BenchmarkShardedScaling/shards=1/phase=construct 5 121000000 ns/op 17827 allocs/op
BenchmarkShardedScaling/shards=1/phase=run 5 240000000 ns/op 27054 events/op
BenchmarkShardedScaling/shards=4/phase=construct 5 98000000 ns/op 17827 allocs/op
BenchmarkShardedScaling/shards=4/phase=run 5 245000000 ns/op 27054 events/op
BenchmarkShardedScaling/engine=sequential/phase=construct-4 5 310000000 ns/op 1129573 allocs/op
BenchmarkShardedScaling/engine=sequential/phase=run-4 5 230000000 ns/op 27054 events/op
BenchmarkShardedScaling/shards=1/phase=construct-4 5 120000000 ns/op 17827 allocs/op
BenchmarkShardedScaling/shards=1/phase=run-4 5 238000000 ns/op 27054 events/op
BenchmarkShardedScaling/shards=4/phase=construct-4 5 97000000 ns/op 17827 allocs/op
BenchmarkShardedScaling/shards=4/phase=run-4 5 103000000 ns/op 27054 events/op
`

func TestEnforceShardSuite(t *testing.T) {
	results, _ := parse(strings.NewReader(shardSample))
	if v := enforce(results, suites["shard"]); len(v) != 0 {
		t.Fatalf("shard budgets violated on passing input: %v", v)
	}
	v, notes := enforceRatios(results, ratioSuites["shard"])
	if len(v) != 0 {
		t.Fatalf("shard ratios violated on passing input: %v", v)
	}
	if len(notes) != 0 {
		t.Fatalf("notes = %v, want none (both gates have qualifying arms)", notes)
	}

	// A shards=4 run phase that slid back toward the shards=1 cost at
	// four procs must trip the parallel-efficiency ratio even though
	// both arms still "pass" in isolation. The identical slide at one
	// proc (line without the -4 suffix) must NOT trip it.
	slow := strings.Replace(shardSample, "103000000 ns/op", "130000000 ns/op", 1)
	results, _ = parse(strings.NewReader(slow))
	v, _ = enforceRatios(results, ratioSuites["shard"])
	if len(v) != 1 || !strings.Contains(v[0], "ratio") || !strings.Contains(v[0], "procs=4") {
		t.Fatalf("violations = %v, want one procs=4 ratio breach", v)
	}

	// Construction cost creeping back toward the sequential builder
	// trips the construct ratio at every proc count it ran at.
	slowBuild := strings.Replace(strings.Replace(shardSample,
		"98000000 ns/op", "140000000 ns/op", 1),
		"97000000 ns/op", "140000000 ns/op", 1)
	results, _ = parse(strings.NewReader(slowBuild))
	v, _ = enforceRatios(results, ratioSuites["shard"])
	if len(v) != 2 || !strings.Contains(v[0], "construct") {
		t.Fatalf("violations = %v, want construct ratio breaches at both proc counts", v)
	}

	// Losing an arm (renamed, filtered out) must fail loudly.
	oneArm := strings.SplitAfter(shardSample, "\n")[0]
	results, _ = parse(strings.NewReader(oneArm))
	v, _ = enforceRatios(results, ratioSuites["shard"])
	if len(v) != 2 || !strings.Contains(v[0], "denominator") || !strings.Contains(v[1], "numerator") {
		t.Fatalf("violations = %v, want a missing-denominator and a missing-numerator breach", v)
	}

	// A slide back to per-host construction allocation (~10 allocs/host
	// on the 100k map) must trip the allocation budget on both proc
	// counts' lines.
	blown := strings.Replace(shardSample,
		"98000000 ns/op 17827 allocs/op",
		"98000000 ns/op 1129573 allocs/op", 1)
	results, _ = parse(strings.NewReader(blown))
	v = enforce(results, suites["shard"])
	if len(v) != 1 || !strings.Contains(v[0], "allocs/op") {
		t.Fatalf("violations = %v, want one allocs/op breach", v)
	}
}

// TestEnforceShardSuiteSingleProc pins the degraded single-core path: a
// run without the -cpu 4 axis must still gate the construct ratio, and
// must report the parallel-efficiency gate as skipped — never silently
// passed.
func TestEnforceShardSuiteSingleProc(t *testing.T) {
	var oneProc strings.Builder
	for _, line := range strings.SplitAfter(shardSample, "\n") {
		if !strings.Contains(line, "-4 ") {
			oneProc.WriteString(line)
		}
	}
	results, _ := parse(strings.NewReader(oneProc.String()))
	v, notes := enforceRatios(results, ratioSuites["shard"])
	if len(v) != 0 {
		t.Fatalf("violations = %v, want none at one proc", v)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "SKIPPED") || !strings.Contains(notes[0], "-cpu 4") {
		t.Fatalf("notes = %v, want one SKIPPED note naming the -cpu axis", notes)
	}

	// The construct gate carries no MinProcs and must still bite.
	slowBuild := strings.Replace(oneProc.String(), "98000000 ns/op", "140000000 ns/op", 1)
	results, _ = parse(strings.NewReader(slowBuild))
	v, _ = enforceRatios(results, ratioSuites["shard"])
	if len(v) != 1 || !strings.Contains(v[0], "construct") {
		t.Fatalf("violations = %v, want one construct ratio breach", v)
	}
}

// specSample mimics a -cpu 1,4 run of the speculative benchmark: at one
// proc speculation is legitimately slower than the border-lane engine
// (snapshot and validation cost with no parallelism to pay for them), so
// the >= 1.3x gate must judge only the -4 pair.
const specSample = `BenchmarkSpeculativeWindows/engine=sharded/phase=run 5 179000000 ns/op 24000 events/op 13540 allocs/op
BenchmarkSpeculativeWindows/engine=speculative/phase=run 5 235000000 ns/op 0.987 commit-rate 24000 events/op 85762 allocs/op
BenchmarkSpeculativeWindows/engine=sharded/phase=run-4 5 178000000 ns/op 24000 events/op 13540 allocs/op
BenchmarkSpeculativeWindows/engine=speculative/phase=run-4 5 96000000 ns/op 0.987 commit-rate 24000 events/op 85762 allocs/op
`

func TestEnforceSpecSuite(t *testing.T) {
	results, _ := parse(strings.NewReader(specSample))
	if v := enforce(results, suites["spec"]); len(v) != 0 {
		t.Fatalf("spec budgets violated on passing input: %v", v)
	}
	v, notes := enforceRatios(results, ratioSuites["spec"])
	if len(v) != 0 {
		t.Fatalf("spec ratios violated on passing input: %v", v)
	}
	if len(notes) != 0 {
		t.Fatalf("notes = %v, want none (the -4 pair qualifies)", notes)
	}

	// Speculation that stops paying for itself at four procs trips the
	// ratio; the same cost at one proc (no -4 suffix) never did.
	slow := strings.Replace(specSample, "96000000 ns/op", "150000000 ns/op", 1)
	results, _ = parse(strings.NewReader(slow))
	v, _ = enforceRatios(results, ratioSuites["spec"])
	if len(v) != 1 || !strings.Contains(v[0], "procs=4") {
		t.Fatalf("violations = %v, want one procs=4 ratio breach", v)
	}

	// A slide back to per-segment checkpoint allocation (~267k allocs/op
	// measured before document pooling) trips the allocation budget.
	blown := strings.ReplaceAll(specSample, "85762 allocs/op", "267000 allocs/op")
	results, _ = parse(strings.NewReader(blown))
	v = enforce(results, suites["spec"])
	if len(v) != 2 || !strings.Contains(v[0], "allocs/op") {
		t.Fatalf("violations = %v, want allocs/op breaches at both proc counts", v)
	}
}

// TestEnforceSpecSuiteSingleProc pins the single-core path: without a
// qualifying 4-proc pair the speculation gate reports itself skipped.
func TestEnforceSpecSuiteSingleProc(t *testing.T) {
	var oneProc strings.Builder
	for _, line := range strings.SplitAfter(specSample, "\n") {
		if !strings.Contains(line, "-4 ") {
			oneProc.WriteString(line)
		}
	}
	results, _ := parse(strings.NewReader(oneProc.String()))
	v, notes := enforceRatios(results, ratioSuites["spec"])
	if len(v) != 0 {
		t.Fatalf("violations = %v, want none at one proc", v)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "SKIPPED") || !strings.Contains(notes[0], "-cpu 4") {
		t.Fatalf("notes = %v, want one SKIPPED note naming the -cpu axis", notes)
	}
}

func TestDerive(t *testing.T) {
	results, _ := parse(strings.NewReader(specSample))
	derive(results)
	// 24000 events / 0.179 s.
	got := results[0].Metrics["events/sec"]
	if want := 24000 / 0.179; got < want*0.999 || got > want*1.001 {
		t.Fatalf("events/sec = %g, want ~%g", got, want)
	}
	// Results without an events/op counter gain nothing.
	plain, _ := parse(strings.NewReader("BenchmarkScheduler/queue=ladder-8 1000 61.15 ns/op\n"))
	derive(plain)
	if _, ok := plain[0].Metrics["events/sec"]; ok {
		t.Fatal("events/sec derived without an events/op counter")
	}
	// Deriving twice (a JSON round trip re-parsed) never compounds.
	before := results[1].Metrics["events/sec"]
	derive(results)
	if after := results[1].Metrics["events/sec"]; after != before {
		t.Fatalf("derive is not idempotent: %g then %g", before, after)
	}
}

func TestRunWritesDerivedThroughput(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "spec.json")
	code, _, stderr := runWith(t, []string{"-out", outPath, "-suite", "spec"}, specSample)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "events/sec") {
		t.Fatal("derived events/sec metric missing from JSON output")
	}
}

func TestRunShardSuite(t *testing.T) {
	dir := t.TempDir()
	code, _, stderr := runWith(t, []string{"-out", filepath.Join(dir, "s.json"), "-suite", "shard"}, shardSample)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	slow := strings.Replace(shardSample, "103000000 ns/op", "231000000 ns/op", 1)
	code, _, stderr = runWith(t, []string{"-out", filepath.Join(dir, "s2.json"), "-suite", "shard"}, slow)
	if code != 1 || !strings.Contains(stderr, "ratio") {
		t.Fatalf("exit %d, stderr: %q", code, stderr)
	}

	// A single-proc run exits zero but surfaces the skipped gate on
	// stdout so CI logs show the parallel gate did not run.
	var oneProc strings.Builder
	for _, line := range strings.SplitAfter(shardSample, "\n") {
		if !strings.Contains(line, "-4 ") {
			oneProc.WriteString(line)
		}
	}
	code, stdout, stderr := runWith(t, []string{"-out", filepath.Join(dir, "s3.json"), "-suite", "shard"}, oneProc.String())
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "SKIPPED") {
		t.Fatalf("stdout: %q, want the skipped parallel gate surfaced", stdout)
	}
}

func TestRunSuiteFlag(t *testing.T) {
	dir := t.TempDir()
	code, _, stderr := runWith(t, []string{"-out", filepath.Join(dir, "b.json"), "-suite", "mega"}, megaSample)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	// The core sample must fail under the mega suite: its budgeted
	// benchmark is absent, and silence here would mean a renamed mega
	// bench could skate past the gate.
	code, _, stderr = runWith(t, []string{"-out", filepath.Join(dir, "b2.json"), "-suite", "mega"}, sample)
	if code != 1 || !strings.Contains(stderr, "missing") {
		t.Fatalf("exit %d, stderr: %q", code, stderr)
	}
	code, _, stderr = runWith(t, []string{"-out", filepath.Join(dir, "b3.json"), "-suite", "nope"}, sample)
	if code != 2 || !strings.Contains(stderr, "unknown -suite") {
		t.Fatalf("exit %d, stderr: %q", code, stderr)
	}
}

// runWith drives the full program with the given flags and stdin,
// returning the exit status and both output streams.
func runWith(t *testing.T, argv []string, stdin string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(argv, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunSuccess(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "bench.json")
	code, stdout, stderr := runWith(t, []string{"-out", outPath}, sample)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "all allocation budgets met") {
		t.Fatalf("stdout: %q", stdout)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var results []Result
	if err := json.Unmarshal(data, &results); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(results) != 5 {
		t.Fatalf("JSON holds %d results, want 5", len(results))
	}
}

func TestRunReadsInputFile(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(inPath, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runWith(t, []string{"-in", inPath, "-out", filepath.Join(dir, "bench.json")}, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
}

func TestRunMissingInputFile(t *testing.T) {
	dir := t.TempDir()
	code, _, stderr := runWith(t, []string{"-in", filepath.Join(dir, "absent.txt"), "-out", filepath.Join(dir, "b.json")}, "")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "benchjson:") {
		t.Fatalf("stderr: %q", stderr)
	}
}

func TestRunMalformedLine(t *testing.T) {
	bad := "BenchmarkScheduler/queue=ladder-8 1000 garbage ns/op\n"
	code, _, stderr := runWith(t, []string{"-out", filepath.Join(t.TempDir(), "b.json")}, bad)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "bad value") {
		t.Fatalf("stderr: %q", stderr)
	}
}

func TestRunEmptyInput(t *testing.T) {
	code, _, stderr := runWith(t, []string{"-out", filepath.Join(t.TempDir(), "b.json")}, "PASS\n")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "no benchmark lines") {
		t.Fatalf("stderr: %q", stderr)
	}
}

func TestRunBudgetBreachExitsNonzero(t *testing.T) {
	bad := strings.Replace(sample, "0.886 allocs/event", "1.52 allocs/event", 1)
	code, _, stderr := runWith(t, []string{"-out", filepath.Join(t.TempDir(), "b.json")}, bad)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "BUDGET EXCEEDED") {
		t.Fatalf("stderr: %q", stderr)
	}
}

func TestRunMissingBudgetMetric(t *testing.T) {
	// The budgeted benchmarks run but never report their budgeted unit.
	input := "BenchmarkScheduler/queue=ladder-8 1000 61.15 ns/op\n" +
		"BenchmarkBroadcastSim/queue=ladder-8 20 15784327 ns/op\n"
	code, _, stderr := runWith(t, []string{"-out", filepath.Join(t.TempDir(), "b.json")}, input)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "did not report") {
		t.Fatalf("stderr: %q", stderr)
	}
}

func TestRunBadFlag(t *testing.T) {
	code, _, _ := runWith(t, []string{"-nosuchflag"}, "")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestRunUnwritableOutput(t *testing.T) {
	code, _, stderr := runWith(t, []string{"-out", filepath.Join(t.TempDir(), "no", "such", "dir", "b.json")}, sample)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "benchjson:") {
		t.Fatalf("stderr: %q", stderr)
	}
}

func TestStripProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkScheduler/queue=ladder-8": "BenchmarkScheduler/queue=ladder",
		"BenchmarkScheduler/queue=ladder":   "BenchmarkScheduler/queue=ladder",
		"BenchmarkX-foo":                    "BenchmarkX-foo",
	} {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestProcsOf(t *testing.T) {
	for in, want := range map[string]int{
		"BenchmarkShardedScaling/shards=4/phase=run-4": 4,
		"BenchmarkShardedScaling/shards=4/phase=run":   1,
		"BenchmarkScheduler/queue=ladder-8":            8,
		"BenchmarkX-foo":                               1,
	} {
		if got := procsOf(in); got != want {
			t.Errorf("procsOf(%q) = %d, want %d", in, got, want)
		}
	}
}

func TestRunMissingOutFlag(t *testing.T) {
	code, _, stderr := runWith(t, nil, sample)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "-out is required") {
		t.Fatalf("stderr: %q", stderr)
	}
}

func TestRunBadTolerance(t *testing.T) {
	code, _, stderr := runWith(t, []string{"-out", filepath.Join(t.TempDir(), "b.json"), "-tolerance", "0"}, sample)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "tolerance") {
		t.Fatalf("stderr: %q", stderr)
	}
}

// writeBaseline runs the tool once to produce a baseline JSON from the
// given benchmark text.
func writeBaseline(t *testing.T, dir, text string) string {
	t.Helper()
	path := filepath.Join(dir, "baseline.json")
	if code, _, stderr := runWith(t, []string{"-out", path}, text); code != 0 {
		t.Fatalf("baseline write failed: %s", stderr)
	}
	return path
}

func TestRunBaselineWithinTolerancePasses(t *testing.T) {
	dir := t.TempDir()
	base := writeBaseline(t, dir, sample)
	// 40% slower scheduler: inside the default 1.5x tolerance.
	slower := strings.Replace(sample, "61.15 ns/op", "85.0 ns/op", 1)
	code, stdout, stderr := runWith(t, []string{"-out", filepath.Join(dir, "new.json"), "-baseline", base}, slower)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "within") {
		t.Fatalf("stdout: %q", stdout)
	}
}

func TestRunBaselineRegressionFails(t *testing.T) {
	dir := t.TempDir()
	base := writeBaseline(t, dir, sample)
	slower := strings.Replace(sample, "61.15 ns/op", "200.0 ns/op", 1)
	code, _, stderr := runWith(t, []string{"-out", filepath.Join(dir, "new.json"), "-baseline", base}, slower)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "REGRESSION") || !strings.Contains(stderr, "BenchmarkScheduler/queue=ladder") {
		t.Fatalf("stderr: %q", stderr)
	}
}

func TestRunBaselineTightTolerance(t *testing.T) {
	dir := t.TempDir()
	base := writeBaseline(t, dir, sample)
	slower := strings.Replace(sample, "61.15 ns/op", "70.0 ns/op", 1)
	code, _, stderr := runWith(t,
		[]string{"-out", filepath.Join(dir, "new.json"), "-baseline", base, "-tolerance", "1.1"}, slower)
	if code != 1 || !strings.Contains(stderr, "REGRESSION") {
		t.Fatalf("exit %d, stderr: %q", code, stderr)
	}
}

func TestRunBaselineInPlaceComparesPreviousContents(t *testing.T) {
	// CI points -out and -baseline at the same committed file: the gate
	// must compare against the old contents, then overwrite them.
	dir := t.TempDir()
	path := writeBaseline(t, dir, sample)
	slower := strings.Replace(sample, "61.15 ns/op", "200.0 ns/op", 1)
	code, _, stderr := runWith(t, []string{"-out", path, "-baseline", path}, slower)
	if code != 1 || !strings.Contains(stderr, "REGRESSION") {
		t.Fatalf("exit %d, stderr: %q", code, stderr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "200") {
		t.Fatal("new results were not written out")
	}
}

func TestRunBaselineNewBenchmarkIgnored(t *testing.T) {
	// A benchmark absent from the baseline is not a regression.
	dir := t.TempDir()
	base := writeBaseline(t, dir, sample)
	extra := sample + "BenchmarkNewThing-8 100 999999 ns/op\n"
	code, _, stderr := runWith(t, []string{"-out", filepath.Join(dir, "new.json"), "-baseline", base}, extra)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
}

func TestRunBaselineMissingFile(t *testing.T) {
	code, _, stderr := runWith(t,
		[]string{"-out", filepath.Join(t.TempDir(), "b.json"), "-baseline", "/no/such/baseline.json"}, sample)
	if code != 1 || !strings.Contains(stderr, "benchjson:") {
		t.Fatalf("exit %d, stderr: %q", code, stderr)
	}
}

func TestRunBaselineMalformedJSON(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runWith(t, []string{"-out", filepath.Join(dir, "b.json"), "-baseline", bad}, sample)
	if code != 1 || !strings.Contains(stderr, "baseline") {
		t.Fatalf("exit %d, stderr: %q", code, stderr)
	}
}
