// Command stormsim runs a single broadcast-storm simulation and prints
// the paper's metrics for it.
//
// Usage:
//
//	stormsim -scheme ac -map 7 -requests 200
//	stormsim -scheme counter:C=3 -map 5 -speed 50
//	stormsim -scheme nc -hello dynamic -map 9
//	stormsim -scheme al -progress -telemetry run.jsonl
//
// Long runs can be checkpointed and resumed. -checkpoint names a state
// file and -checkpoint-every the simulated cadence; the file always
// holds the latest checkpoint (written atomically via rename). -resume
// restarts a run from such a file — the flags must describe the same
// configuration the checkpoint was taken under, and the resumed run's
// metrics are byte-identical to an uninterrupted one. -fork-seed
// re-seeds the restored hosts instead, turning the checkpoint into the
// shared past of a what-if run:
//
//	stormsim -scheme ac -map 7 -checkpoint run.ck -checkpoint-every 10000
//	stormsim -scheme ac -map 7 -resume run.ck
//	stormsim -scheme ac -map 7 -resume run.ck -fork-seed 42
//
// Schemes are given as registry specs (run with -schemes for the full
// syntax): flooding, prob:P=0.7, counter:C=3, distance:D=40,
// location:A=0.0469, ac[:n1=..,n2=..], al[:n1=..,n2=..,max=..], nc,
// cluster[:inner=..].
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"repro/internal/manet"
	"repro/internal/obs"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/viz"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole tool behind an injectable surface (arguments and
// output streams), so tests drive it as a function. The exit code
// follows the flag package's convention: 2 for usage errors, 1 for
// runtime failures.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("stormsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		schemeSpec  = fs.String("scheme", "flooding", "scheme spec, e.g. counter:C=3 (run -schemes for syntax)")
		listSchemes = fs.Bool("schemes", false, "print the scheme spec syntax and exit")
		c           = fs.Int("C", 3, "counter threshold shorthand for -scheme counter")
		d           = fs.Float64("D", 40, "distance threshold shorthand for -scheme distance")
		a           = fs.Float64("A", 0.0469, "coverage threshold shorthand for -scheme location")
		mapUnits    = fs.Int("map", 5, "square map side in 500m units (1,3,5,7,9,11)")
		hosts       = fs.Int("hosts", 100, "number of mobile hosts")
		requests    = fs.Int("requests", 100, "broadcast operations to simulate")
		speed       = fs.Float64("speed", 0, "max host speed km/h (0 = paper rule: 10 per map unit)")
		hello       = fs.String("hello", "auto", "off|fixed|dynamic|auto (auto enables fixed when the scheme needs it)")
		helloMS     = fs.Int("hello-interval", 1000, "fixed hello interval, milliseconds")
		seed        = fs.Uint64("seed", 1, "random seed")
		static      = fs.Bool("static", false, "freeze hosts (no mobility)")
		engineName  = fs.String("engine", "auto", "simulation engine: auto|sequential-oracle|sharded|speculative")
		shards      = fs.Int("shards", 0, "shard count for the sharded engines (power of two, 0 = engine default)")
		parStats    = fs.Bool("parallel-stats", false, "report how barrier windows executed (sharded engines)")
		ckptPath    = fs.String("checkpoint", "", "write run checkpoints to this file (with -checkpoint-every)")
		ckptEvery   = fs.Int("checkpoint-every", 0, "checkpoint cadence, simulated milliseconds (with -checkpoint)")
		resumePath  = fs.String("resume", "", "resume the run from this checkpoint file")
		forkSeed    = fs.Uint64("fork-seed", 0, "with -resume: re-seed the restored hosts to fork a what-if run")
		topo        = fs.Bool("topo", false, "print the final topology as an ASCII map")
		progress    = fs.Bool("progress", false, "report simulated-time progress on stderr")
		telemetry   = fs.String("telemetry", "", "write run telemetry (time series + trace events) as JSONL to this file")
		tickMS      = fs.Int("telemetry-tick", 100, "telemetry sampling tick, simulated milliseconds")
		cpuprofile  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = fs.String("memprofile", "", "write a heap profile to this file")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	if *listSchemes {
		fmt.Fprint(stdout, "scheme specs:\n", scheme.Usage())
		return 0
	}

	fail := func(code int, err error) int {
		fmt.Fprintln(stderr, "stormsim:", err)
		return code
	}

	sch, err := scheme.Parse(legacySpec(fs, *schemeSpec, *c, *d, *a))
	if err != nil {
		return fail(2, err)
	}

	switch {
	case (*ckptPath == "") != (*ckptEvery == 0):
		return fail(2, fmt.Errorf("-checkpoint and -checkpoint-every must be used together"))
	case *ckptEvery < 0:
		return fail(2, fmt.Errorf("-checkpoint-every must be positive, got %d", *ckptEvery))
	case *forkSeed != 0 && *resumePath == "":
		return fail(2, fmt.Errorf("-fork-seed requires -resume"))
	}

	stopProf, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return fail(1, err)
	}

	engine, err := manet.ParseEngine(*engineName)
	if err != nil {
		return fail(2, err)
	}

	cfg := manet.Config{
		Hosts:         *hosts,
		MapUnits:      *mapUnits,
		MaxSpeedKMH:   *speed,
		Static:        *static,
		Scheme:        sch,
		Requests:      *requests,
		HelloInterval: sim.Duration(*helloMS) * sim.Millisecond,
		Engine:        engine,
		Shards:        *shards,
		Seed:          *seed,
	}
	switch *hello {
	case "auto":
		// leave zero value; defaults enable HELLO when the scheme needs it
	case "off":
		cfg.HelloMode = manet.HelloOff
	case "fixed":
		cfg.HelloMode = manet.HelloFixed
	case "dynamic":
		cfg.HelloMode = manet.HelloDynamic
	default:
		return fail(2, fmt.Errorf("unknown hello mode %q", *hello))
	}

	var col *obs.Collector
	if *telemetry != "" {
		col = obs.New(sim.Duration(*tickMS) * sim.Millisecond)
		cfg.Telemetry = col
	}

	var n *manet.Network
	if *resumePath != "" {
		f, err := os.Open(*resumePath)
		if err != nil {
			return fail(1, err)
		}
		n, err = manet.RestoreNetwork(f, cfg)
		f.Close()
		if err != nil {
			return fail(1, err)
		}
		if *forkSeed != 0 {
			n.DivergeSeed(*forkSeed)
		}
	} else {
		n, err = manet.New(cfg)
		if err != nil {
			return fail(1, err)
		}
	}
	if *ckptPath != "" {
		n.CheckpointEvery = sim.Duration(*ckptEvery) * sim.Millisecond
		n.CheckpointHook = func(now sim.Time) error {
			if err := writeCheckpoint(n, *ckptPath); err != nil {
				return err
			}
			if *progress {
				fmt.Fprintf(stderr, "checkpoint at %.1f s -> %s\n", now.Seconds(), *ckptPath)
			}
			return nil
		}
	}
	var rec *trace.Recorder
	if *telemetry != "" {
		rec = trace.NewRecorder(0)
		n.Tracer = rec
	}
	if *progress {
		n.Progress = stderr
	}
	// Ctrl-C cancels cooperatively at the engine's next barrier window
	// instead of killing the process mid-event.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	s, err := n.RunContext(ctx)
	if err != nil {
		return fail(1, fmt.Errorf("run cancelled: %w", err))
	}

	fmt.Fprintf(stdout, "scheme            %s\n", sch.Name())
	fmt.Fprintf(stdout, "engine            %s", n.Engine())
	if n.ShardCount() > 0 {
		fmt.Fprintf(stdout, " (%d shards)", n.ShardCount())
	}
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "map               %dx%d units (%d hosts, max %g km/h)\n",
		*mapUnits, *mapUnits, *hosts, n.Config().MaxSpeedKMH)
	fmt.Fprintf(stdout, "broadcasts        %d\n", s.Broadcasts)
	fmt.Fprintf(stdout, "RE  (reachability)        %.4f (std %.4f)\n", s.MeanRE, s.StdRE)
	fmt.Fprintf(stdout, "SRB (saved rebroadcasts)  %.4f (std %.4f)\n", s.MeanSRB, s.StdSRB)
	fmt.Fprintf(stdout, "mean latency              %.2f ms\n", s.MeanLatency.Milliseconds())
	fmt.Fprintf(stdout, "hello packets sent        %d\n", s.HelloSent)
	fmt.Fprintf(stdout, "transmissions             %d\n", s.Transmissions)
	fmt.Fprintf(stdout, "deliveries / collisions   %d / %d\n", s.Deliveries, s.Collisions)
	fmt.Fprintf(stdout, "simulated time            %.1f s (%d events)\n",
		s.SimulatedTime.Seconds(), s.Events)

	if *parStats {
		st := n.ParallelStats()
		var lanes uint64
		for _, c := range st.ShardExecuted {
			lanes += c
		}
		fmt.Fprintf(stdout, "barrier windows           %d (%d widened)\n", st.Barriers, st.Widened)
		fmt.Fprintf(stdout, "lane / border events      %d / %d (border share %.3f)\n",
			lanes, st.BorderExecuted, st.BorderShare())
		if st.Speculated > 0 {
			fmt.Fprintf(stdout, "speculative windows       %d committed / %d rolled back of %d (commit rate %.3f)\n",
				st.Committed, st.RolledBack, st.Speculated, st.CommitRate())
		}
	}

	if *telemetry != "" {
		if err := writeTelemetry(*telemetry, n.Config(), sch, col, rec); err != nil {
			return fail(1, err)
		}
		fmt.Fprintf(stdout, "telemetry                 %s (%d samples, %d events)\n",
			*telemetry, len(col.Samples()), rec.Len())
	}

	if *topo {
		pts := n.Positions()
		w, h := n.Area()
		fmt.Fprintln(stdout)
		fmt.Fprintln(stdout, "final topology (each cell ~", int(w)/72, "m wide):")
		fmt.Fprint(stdout, viz.Topology(pts, w, h, 72))
		fmt.Fprint(stdout, viz.ConnectivitySummary(pts, n.Config().Radius))
	}

	if err := stopProf(); err != nil {
		return fail(1, err)
	}
	return 0
}

// writeCheckpoint writes the network's state next to the target and
// renames it into place, so the checkpoint file is never half-written
// even if the process dies mid-checkpoint.
func writeCheckpoint(n *manet.Network, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := n.Checkpoint(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// legacySpec folds the pre-registry -C/-D/-A shorthand flags into the
// spec, so `-scheme counter -C 5` keeps working. The shorthand only
// applies when the spec itself carries no parameters.
func legacySpec(fs *flag.FlagSet, spec string, c int, d, a float64) string {
	if strings.ContainsRune(spec, ':') {
		return spec
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	switch strings.ToLower(strings.TrimSpace(spec)) {
	case "counter":
		if set["C"] {
			return fmt.Sprintf("%s:C=%d", spec, c)
		}
	case "distance":
		if set["D"] {
			return fmt.Sprintf("%s:D=%g", spec, d)
		}
	case "location":
		if set["A"] {
			return fmt.Sprintf("%s:A=%g", spec, a)
		}
	}
	return spec
}

// writeTelemetry exports the run's series and event stream as JSONL.
func writeTelemetry(path string, cfg manet.Config, sch scheme.Scheme, col *obs.Collector, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	meta := obs.Meta{
		Scheme:   sch.Name(),
		Hosts:    cfg.Hosts,
		MapUnits: cfg.MapUnits,
		Seed:     cfg.Seed,
	}
	if err := obs.Export(f, meta, col, rec.Events()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
