// Command stormsim runs a single broadcast-storm simulation and prints
// the paper's metrics for it.
//
// Usage:
//
//	stormsim -scheme ac -map 7 -requests 200
//	stormsim -scheme counter -C 3 -map 5 -speed 50
//	stormsim -scheme nc -hello dynamic -map 9
//
// Schemes: flooding, counter (-C), distance (-D), location (-A),
// ac (adaptive counter), al (adaptive location), nc (neighbor coverage).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/manet"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/viz"
)

func main() {
	var (
		schemeName = flag.String("scheme", "flooding", "flooding|counter|distance|location|ac|al|nc")
		c          = flag.Int("C", 3, "counter threshold for -scheme counter")
		d          = flag.Float64("D", 40, "distance threshold (meters) for -scheme distance")
		a          = flag.Float64("A", 0.0469, "coverage threshold for -scheme location")
		mapUnits   = flag.Int("map", 5, "square map side in 500m units (1,3,5,7,9,11)")
		hosts      = flag.Int("hosts", 100, "number of mobile hosts")
		requests   = flag.Int("requests", 100, "broadcast operations to simulate")
		speed      = flag.Float64("speed", 0, "max host speed km/h (0 = paper rule: 10 per map unit)")
		hello      = flag.String("hello", "auto", "off|fixed|dynamic|auto (auto enables fixed when the scheme needs it)")
		helloMS    = flag.Int("hello-interval", 1000, "fixed hello interval, milliseconds")
		seed       = flag.Uint64("seed", 1, "random seed")
		static     = flag.Bool("static", false, "freeze hosts (no mobility)")
		topo       = flag.Bool("topo", false, "print the final topology as an ASCII map")
	)
	flag.Parse()

	var sch scheme.Scheme
	switch *schemeName {
	case "flooding":
		sch = scheme.Flooding{}
	case "counter":
		sch = scheme.Counter{C: *c}
	case "distance":
		sch = scheme.Distance{D: *d}
	case "location":
		sch = scheme.Location{A: *a}
	case "ac":
		sch = scheme.AdaptiveCounter{}
	case "al":
		sch = scheme.AdaptiveLocation{}
	case "nc":
		sch = scheme.NeighborCoverage{}
	default:
		fmt.Fprintf(os.Stderr, "stormsim: unknown scheme %q\n", *schemeName)
		os.Exit(2)
	}

	cfg := manet.Config{
		Hosts:         *hosts,
		MapUnits:      *mapUnits,
		MaxSpeedKMH:   *speed,
		Static:        *static,
		Scheme:        sch,
		Requests:      *requests,
		HelloInterval: sim.Duration(*helloMS) * sim.Millisecond,
		Seed:          *seed,
	}
	switch *hello {
	case "auto":
		// leave zero value; defaults enable HELLO when the scheme needs it
	case "off":
		cfg.HelloMode = manet.HelloOff
	case "fixed":
		cfg.HelloMode = manet.HelloFixed
	case "dynamic":
		cfg.HelloMode = manet.HelloDynamic
	default:
		fmt.Fprintf(os.Stderr, "stormsim: unknown hello mode %q\n", *hello)
		os.Exit(2)
	}

	n, err := manet.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stormsim:", err)
		os.Exit(1)
	}
	s := n.Run()

	fmt.Printf("scheme            %s\n", sch.Name())
	fmt.Printf("map               %dx%d units (%d hosts, max %g km/h)\n",
		*mapUnits, *mapUnits, *hosts, n.Config().MaxSpeedKMH)
	fmt.Printf("broadcasts        %d\n", s.Broadcasts)
	fmt.Printf("RE  (reachability)        %.4f (std %.4f)\n", s.MeanRE, s.StdRE)
	fmt.Printf("SRB (saved rebroadcasts)  %.4f (std %.4f)\n", s.MeanSRB, s.StdSRB)
	fmt.Printf("mean latency              %.2f ms\n", s.MeanLatency.Milliseconds())
	fmt.Printf("hello packets sent        %d\n", s.HelloSent)
	fmt.Printf("transmissions             %d\n", s.Transmissions)
	fmt.Printf("deliveries / collisions   %d / %d\n", s.Deliveries, s.Collisions)
	fmt.Printf("simulated time            %.1f s (%d events)\n",
		s.SimulatedTime.Seconds(), s.Events)

	if *topo {
		pts := n.Positions()
		w, h := n.Area()
		fmt.Println()
		fmt.Println("final topology (each cell ~", int(w)/72, "m wide):")
		fmt.Print(viz.Topology(pts, w, h, 72))
		fmt.Print(viz.ConnectivitySummary(pts, n.Config().Radius))
	}
}
