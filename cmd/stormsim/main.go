// Command stormsim runs a single broadcast-storm simulation and prints
// the paper's metrics for it.
//
// Usage:
//
//	stormsim -scheme ac -map 7 -requests 200
//	stormsim -scheme counter:C=3 -map 5 -speed 50
//	stormsim -scheme nc -hello dynamic -map 9
//	stormsim -scheme al -progress -telemetry run.jsonl
//
// Schemes are given as registry specs (run with -schemes for the full
// syntax): flooding, prob:P=0.7, counter:C=3, distance:D=40,
// location:A=0.0469, ac[:n1=..,n2=..], al[:n1=..,n2=..,max=..], nc,
// cluster[:inner=..].
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/internal/manet"
	"repro/internal/obs"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/viz"
)

func main() {
	var (
		schemeSpec  = flag.String("scheme", "flooding", "scheme spec, e.g. counter:C=3 (run -schemes for syntax)")
		listSchemes = flag.Bool("schemes", false, "print the scheme spec syntax and exit")
		c           = flag.Int("C", 3, "counter threshold shorthand for -scheme counter")
		d           = flag.Float64("D", 40, "distance threshold shorthand for -scheme distance")
		a           = flag.Float64("A", 0.0469, "coverage threshold shorthand for -scheme location")
		mapUnits    = flag.Int("map", 5, "square map side in 500m units (1,3,5,7,9,11)")
		hosts       = flag.Int("hosts", 100, "number of mobile hosts")
		requests    = flag.Int("requests", 100, "broadcast operations to simulate")
		speed       = flag.Float64("speed", 0, "max host speed km/h (0 = paper rule: 10 per map unit)")
		hello       = flag.String("hello", "auto", "off|fixed|dynamic|auto (auto enables fixed when the scheme needs it)")
		helloMS     = flag.Int("hello-interval", 1000, "fixed hello interval, milliseconds")
		seed        = flag.Uint64("seed", 1, "random seed")
		static      = flag.Bool("static", false, "freeze hosts (no mobility)")
		engineName  = flag.String("engine", "auto", "simulation engine: auto|sequential-oracle|sharded")
		shards      = flag.Int("shards", 0, "shard count for the sharded engine (power of two, 0 = engine default)")
		topo        = flag.Bool("topo", false, "print the final topology as an ASCII map")
		progress    = flag.Bool("progress", false, "report simulated-time progress on stderr")
		telemetry   = flag.String("telemetry", "", "write run telemetry (time series + trace events) as JSONL to this file")
		tickMS      = flag.Int("telemetry-tick", 100, "telemetry sampling tick, simulated milliseconds")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	if *listSchemes {
		fmt.Print("scheme specs:\n", scheme.Usage())
		return
	}

	sch, err := scheme.Parse(legacySpec(*schemeSpec, *c, *d, *a))
	if err != nil {
		fmt.Fprintln(os.Stderr, "stormsim:", err)
		os.Exit(2)
	}

	stopProf, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stormsim:", err)
		os.Exit(1)
	}

	engine, err := manet.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stormsim:", err)
		os.Exit(2)
	}

	cfg := manet.Config{
		Hosts:         *hosts,
		MapUnits:      *mapUnits,
		MaxSpeedKMH:   *speed,
		Static:        *static,
		Scheme:        sch,
		Requests:      *requests,
		HelloInterval: sim.Duration(*helloMS) * sim.Millisecond,
		Engine:        engine,
		Shards:        *shards,
		Seed:          *seed,
	}
	switch *hello {
	case "auto":
		// leave zero value; defaults enable HELLO when the scheme needs it
	case "off":
		cfg.HelloMode = manet.HelloOff
	case "fixed":
		cfg.HelloMode = manet.HelloFixed
	case "dynamic":
		cfg.HelloMode = manet.HelloDynamic
	default:
		fmt.Fprintf(os.Stderr, "stormsim: unknown hello mode %q\n", *hello)
		os.Exit(2)
	}

	var col *obs.Collector
	if *telemetry != "" {
		col = obs.New(sim.Duration(*tickMS) * sim.Millisecond)
		cfg.Telemetry = col
	}

	n, err := manet.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stormsim:", err)
		os.Exit(1)
	}
	var rec *trace.Recorder
	if *telemetry != "" {
		rec = trace.NewRecorder(0)
		n.Tracer = rec
	}
	if *progress {
		n.Progress = os.Stderr
	}
	// Ctrl-C cancels cooperatively at the engine's next barrier window
	// instead of killing the process mid-event.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	s, err := n.RunContext(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stormsim: run cancelled:", err)
		os.Exit(1)
	}

	fmt.Printf("scheme            %s\n", sch.Name())
	fmt.Printf("engine            %s", n.Engine())
	if n.ShardCount() > 0 {
		fmt.Printf(" (%d shards)", n.ShardCount())
	}
	fmt.Println()
	fmt.Printf("map               %dx%d units (%d hosts, max %g km/h)\n",
		*mapUnits, *mapUnits, *hosts, n.Config().MaxSpeedKMH)
	fmt.Printf("broadcasts        %d\n", s.Broadcasts)
	fmt.Printf("RE  (reachability)        %.4f (std %.4f)\n", s.MeanRE, s.StdRE)
	fmt.Printf("SRB (saved rebroadcasts)  %.4f (std %.4f)\n", s.MeanSRB, s.StdSRB)
	fmt.Printf("mean latency              %.2f ms\n", s.MeanLatency.Milliseconds())
	fmt.Printf("hello packets sent        %d\n", s.HelloSent)
	fmt.Printf("transmissions             %d\n", s.Transmissions)
	fmt.Printf("deliveries / collisions   %d / %d\n", s.Deliveries, s.Collisions)
	fmt.Printf("simulated time            %.1f s (%d events)\n",
		s.SimulatedTime.Seconds(), s.Events)

	if *telemetry != "" {
		if err := writeTelemetry(*telemetry, n.Config(), sch, col, rec); err != nil {
			fmt.Fprintln(os.Stderr, "stormsim:", err)
			os.Exit(1)
		}
		fmt.Printf("telemetry                 %s (%d samples, %d events)\n",
			*telemetry, len(col.Samples()), rec.Len())
	}

	if *topo {
		pts := n.Positions()
		w, h := n.Area()
		fmt.Println()
		fmt.Println("final topology (each cell ~", int(w)/72, "m wide):")
		fmt.Print(viz.Topology(pts, w, h, 72))
		fmt.Print(viz.ConnectivitySummary(pts, n.Config().Radius))
	}

	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "stormsim:", err)
		os.Exit(1)
	}
}

// legacySpec folds the pre-registry -C/-D/-A shorthand flags into the
// spec, so `-scheme counter -C 5` keeps working. The shorthand only
// applies when the spec itself carries no parameters.
func legacySpec(spec string, c int, d, a float64) string {
	if strings.ContainsRune(spec, ':') {
		return spec
	}
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	switch strings.ToLower(strings.TrimSpace(spec)) {
	case "counter":
		if set["C"] {
			return fmt.Sprintf("%s:C=%d", spec, c)
		}
	case "distance":
		if set["D"] {
			return fmt.Sprintf("%s:D=%g", spec, d)
		}
	case "location":
		if set["A"] {
			return fmt.Sprintf("%s:A=%g", spec, a)
		}
	}
	return spec
}

// writeTelemetry exports the run's series and event stream as JSONL.
func writeTelemetry(path string, cfg manet.Config, sch scheme.Scheme, col *obs.Collector, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	meta := obs.Meta{
		Scheme:   sch.Name(),
		Hosts:    cfg.Hosts,
		MapUnits: cfg.MapUnits,
		Seed:     cfg.Seed,
	}
	if err := obs.Export(f, meta, col, rec.Events()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
