package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// base returns the flags of a small deterministic run, with any extra
// flags appended.
func base(extra ...string) []string {
	return append([]string{
		"-scheme", "ac", "-map", "1", "-hosts", "20", "-requests", "5", "-seed", "3",
	}, extra...)
}

// runTool drives the tool and returns (exit code, stdout, stderr).
func runTool(t *testing.T, argv []string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(argv, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestCheckpointResumeMatchesStraightRun(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "run.ck")

	code, plain, errs := runTool(t, base())
	if code != 0 {
		t.Fatalf("straight run exited %d: %s", code, errs)
	}
	if !strings.Contains(plain, "scheme            AC") {
		t.Fatalf("unexpected output:\n%s", plain)
	}

	code, hooked, errs := runTool(t, base("-checkpoint", ck, "-checkpoint-every", "6000"))
	if code != 0 {
		t.Fatalf("checkpointing run exited %d: %s", code, errs)
	}
	if hooked != plain {
		t.Fatalf("checkpointing changed the run:\nhooked:\n%s\nplain:\n%s", hooked, plain)
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}

	code, resumed, errs := runTool(t, base("-resume", ck))
	if code != 0 {
		t.Fatalf("resumed run exited %d: %s", code, errs)
	}
	if resumed != plain {
		t.Fatalf("resumed run diverged:\nresumed:\n%s\nplain:\n%s", resumed, plain)
	}

	code, forked, errs := runTool(t, base("-resume", ck, "-fork-seed", "99"))
	if code != 0 {
		t.Fatalf("forked run exited %d: %s", code, errs)
	}
	if forked == plain {
		t.Fatal("fork-seed run reproduced the original metrics")
	}
}

func TestResumeBadPath(t *testing.T) {
	code, _, errs := runTool(t, base("-resume", filepath.Join(t.TempDir(), "missing.ck")))
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errs, "missing.ck") {
		t.Fatalf("stderr does not name the file:\n%s", errs)
	}
}

func TestResumeVersionMismatch(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "run.ck")
	if code, _, errs := runTool(t, base("-checkpoint", ck, "-checkpoint-every", "6000")); code != 0 {
		t.Fatalf("checkpointing run failed: %s", errs)
	}
	data, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	data[8] = 0x7f // version byte follows the 8-byte magic
	if err := os.WriteFile(ck, data, 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errs := runTool(t, base("-resume", ck))
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errs, "version") {
		t.Fatalf("stderr does not mention the version:\n%s", errs)
	}
}

func TestResumeContradictoryConfig(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "run.ck")
	if code, _, errs := runTool(t, base("-checkpoint", ck, "-checkpoint-every", "6000")); code != 0 {
		t.Fatalf("checkpointing run failed: %s", errs)
	}
	for _, tc := range []struct{ name, flag, value string }{
		{"seed", "-seed", "77"},
		{"scheme", "-scheme", "flooding"},
		{"hosts", "-hosts", "21"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			argv := append([]string{
				"-scheme", "ac", "-map", "1", "-hosts", "20", "-requests", "5", "-seed", "3",
				"-resume", ck,
			}, tc.flag, tc.value)
			// Later flags win, so the contradiction overrides the base value.
			code, _, errs := runTool(t, argv)
			if code != 1 {
				t.Fatalf("exit %d, want 1 (stderr: %s)", code, errs)
			}
			if !strings.Contains(errs, "different configuration") {
				t.Fatalf("stderr does not flag the configuration:\n%s", errs)
			}
		})
	}
}

func TestFlagContradictions(t *testing.T) {
	cases := [][]string{
		base("-checkpoint", "x.ck"),                  // -checkpoint without cadence
		base("-checkpoint-every", "1000"),            // cadence without a file
		base("-checkpoint", "x.ck", "-checkpoint-every", "-5"),
		base("-fork-seed", "9"), // fork without -resume
	}
	for _, argv := range cases {
		if code, _, _ := runTool(t, argv); code != 2 {
			t.Fatalf("%v: exit %d, want usage error 2", argv, code)
		}
	}
}
