// Command stormtrace runs a short simulation with packet-level tracing
// and dumps per-broadcast timelines: who delivered, who rebroadcast, who
// was inhibited, and where collisions destroyed copies. It is the
// forensic view of the broadcast storm.
//
//	stormtrace -scheme flooding -map 1 -requests 2     # watch the storm
//	stormtrace -scheme ac -map 7 -requests 3           # watch suppression
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/manet"
	"repro/internal/scheme"
	"repro/internal/trace"
)

func main() {
	var (
		schemeName = flag.String("scheme", "flooding", "flooding|counter|ac|al|nc")
		c          = flag.Int("C", 3, "counter threshold for -scheme counter")
		mapUnits   = flag.Int("map", 3, "square map side in 500m units")
		hosts      = flag.Int("hosts", 30, "number of mobile hosts")
		requests   = flag.Int("requests", 3, "broadcasts to trace")
		seed       = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	var sch scheme.Scheme
	switch *schemeName {
	case "flooding":
		sch = scheme.Flooding{}
	case "counter":
		sch = scheme.Counter{C: *c}
	case "ac":
		sch = scheme.AdaptiveCounter{}
	case "al":
		sch = scheme.AdaptiveLocation{}
	case "nc":
		sch = scheme.NeighborCoverage{}
	default:
		fmt.Fprintf(os.Stderr, "stormtrace: unknown scheme %q\n", *schemeName)
		os.Exit(2)
	}

	net, err := manet.New(manet.Config{
		Hosts:    *hosts,
		MapUnits: *mapUnits,
		Scheme:   sch,
		Requests: *requests,
		Seed:     *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "stormtrace:", err)
		os.Exit(1)
	}
	rec := trace.NewRecorder(0)
	net.Tracer = rec
	s := net.Run()

	for _, br := range net.Records() {
		fmt.Print(rec.Dump(br.ID))
		fmt.Printf("  => e=%d r=%d t=%d RE=%.3f SRB=%.3f latency=%.1fms\n\n",
			br.Reachable, br.Received, br.Transmitted, br.RE(), br.SRB(),
			br.Latency().Milliseconds())
	}

	counts := rec.CountByKind()
	fmt.Printf("totals: %d originate, %d deliver, %d duplicate, %d transmit, %d inhibit, %d garbled\n",
		counts[trace.Originate], counts[trace.Deliver], counts[trace.Duplicate],
		counts[trace.Transmit], counts[trace.Inhibit], counts[trace.Garbled])
	fmt.Printf("channel: %d transmissions, %d deliveries, %d collisions\n",
		s.Transmissions, s.Deliveries, s.Collisions)
}
