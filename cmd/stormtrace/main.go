// Command stormtrace runs a short simulation with packet-level tracing
// and dumps per-broadcast timelines: who delivered, who rebroadcast, who
// was inhibited, and where collisions destroyed copies. It is the
// forensic view of the broadcast storm.
//
//	stormtrace -scheme flooding -map 1 -requests 2     # watch the storm
//	stormtrace -scheme ac -map 7 -requests 3           # watch suppression
//	stormtrace -scheme counter:C=2 -jsonl trace.jsonl  # machine-readable
//	stormtrace -decode trace.jsonl                     # re-render a dump
//
// Schemes are given as registry specs (run with -schemes for syntax).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/manet"
	"repro/internal/obs"
	"repro/internal/scheme"
	"repro/internal/trace"
)

func main() {
	var (
		schemeSpec  = flag.String("scheme", "flooding", "scheme spec, e.g. counter:C=3 (run -schemes for syntax)")
		listSchemes = flag.Bool("schemes", false, "print the scheme spec syntax and exit")
		mapUnits    = flag.Int("map", 3, "square map side in 500m units")
		hosts       = flag.Int("hosts", 30, "number of mobile hosts")
		requests    = flag.Int("requests", 3, "broadcasts to trace")
		seed        = flag.Uint64("seed", 1, "random seed")
		jsonl       = flag.String("jsonl", "", "also write the event stream as JSONL to this file")
		decode      = flag.String("decode", "", "decode a JSONL telemetry/trace file and print its event totals instead of simulating")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	if *listSchemes {
		fmt.Print("scheme specs:\n", scheme.Usage())
		return
	}
	if *decode != "" {
		if err := decodeFile(*decode); err != nil {
			fmt.Fprintln(os.Stderr, "stormtrace:", err)
			os.Exit(1)
		}
		return
	}

	sch, err := scheme.Parse(*schemeSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stormtrace:", err)
		os.Exit(2)
	}

	stopProf, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stormtrace:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "stormtrace:", err)
			os.Exit(1)
		}
	}()

	net, err := manet.New(manet.Config{
		Hosts:    *hosts,
		MapUnits: *mapUnits,
		Scheme:   sch,
		Requests: *requests,
		Seed:     *seed,

		// The per-broadcast report below walks the full record set.
		RetainRecords: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "stormtrace:", err)
		os.Exit(1)
	}
	rec := trace.NewRecorder(0)
	net.Tracer = rec
	s := net.Run()

	for _, br := range net.Records() {
		fmt.Print(rec.Dump(br.ID))
		fmt.Printf("  => e=%d r=%d t=%d RE=%.3f SRB=%.3f latency=%.1fms\n\n",
			br.Reachable, br.Received, br.Transmitted, br.RE(), br.SRB(),
			br.Latency().Milliseconds())
	}

	printTotals(rec.CountByKind())
	fmt.Printf("channel: %d transmissions, %d deliveries, %d collisions\n",
		s.Transmissions, s.Deliveries, s.Collisions)

	if *jsonl != "" {
		f, err := os.Create(*jsonl)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stormtrace:", err)
			os.Exit(1)
		}
		err = rec.EncodeJSONL(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "stormtrace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d events to %s (schema v%d)\n", rec.Len(), *jsonl, trace.JSONLVersion)
	}
}

// decodeFile reads a JSONL stream written by -jsonl (or by stormsim
// -telemetry / obs.Export — non-event lines are skipped) and prints its
// event totals, proving the stream round-trips.
func decodeFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	// A full telemetry export (stormsim -telemetry) opens with a meta
	// line; a bare -jsonl trace has events only. Try the richer format
	// first, then fall back to the plain event stream.
	var events []trace.Event
	if dump, obsErr := obs.Decode(f); obsErr == nil {
		events = dump.Events
		fmt.Printf("telemetry export: scheme=%s hosts=%d map=%d seed=%d, %d samples\n",
			dump.Meta.Scheme, dump.Meta.Hosts, dump.Meta.MapUnits, dump.Meta.Seed, len(dump.Samples))
	} else {
		if _, err := f.Seek(0, 0); err != nil {
			return err
		}
		events, err = trace.DecodeJSONL(f)
		if err != nil {
			return err
		}
	}
	counts := map[trace.Kind]int{}
	for _, e := range events {
		counts[e.Kind]++
	}
	fmt.Printf("%s: %d events\n", path, len(events))
	printTotals(counts)
	return nil
}

func printTotals(counts map[trace.Kind]int) {
	fmt.Printf("totals: %d originate, %d deliver, %d duplicate, %d transmit, %d inhibit, %d garbled\n",
		counts[trace.Originate], counts[trace.Deliver], counts[trace.Duplicate],
		counts[trace.Transmit], counts[trace.Inhibit], counts[trace.Garbled])
}
