// Command figures regenerates the paper's evaluation figures.
//
// Usage:
//
//	figures -list
//	figures -fig fig7 [-requests 200] [-replicas 3] [-hosts 100] [-csv]
//	figures -fig all
//	figures -compare "flooding counter:C=3 ac"     # ad-hoc scheme sweep
//	figures -telemetry run.jsonl                   # channel-load report
//
// Each figure prints one or more tables with the same rows/series the
// paper plots. The -paper flag prints the result the paper reports next
// to each figure so shapes can be compared at a glance.
//
// -compare takes scheme registry specs separated by whitespace (specs
// themselves contain commas; run -schemes for the syntax) and sweeps
// them over every map size like the paper figures do.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/scheme"
)

func main() {
	var (
		fig      = flag.String("fig", "", "figure id to regenerate (fig1..fig13), or 'all'")
		list     = flag.Bool("list", false, "list available figures")
		requests = flag.Int("requests", 0, "broadcasts per replica (default 40; paper used 10000)")
		replicas = flag.Int("replicas", 0, "independently seeded repetitions per point (default 2)")
		hosts    = flag.Int("hosts", 0, "hosts per simulation (default 100)")
		seed     = flag.Uint64("seed", 0, "base random seed (default 1)")
		workers  = flag.Int("workers", 0, "parallel simulations (default GOMAXPROCS)")
		trials   = flag.Int("trials", 0, "Monte-Carlo trials for fig1/fig2 (default 3000)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned text")
		out      = flag.String("out", "", "also write each table as CSV into this directory")
		ci       = flag.Bool("ci", false, "show 95% confidence half-widths on RE (use with -replicas >= 3)")
		paper    = flag.Bool("paper", true, "print the paper's reported result for comparison")
		compare  = flag.String("compare", "", "whitespace-separated scheme specs to sweep over all maps (run -schemes for syntax)")
		schemes  = flag.Bool("schemes", false, "print the scheme spec syntax and exit")
		telem    = flag.String("telemetry", "", "print a channel-load report for a stormsim -telemetry JSONL file instead of simulating")
		progress = flag.Bool("progress", false, "report matrix progress (replicas done, events/s, ETA) on stderr")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof  = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	if *schemes {
		fmt.Print("scheme specs:\n", scheme.Usage())
		return
	}
	if *telem != "" {
		if err := loadReport(*telem, *csv); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, s := range experiment.Registry() {
			fmt.Printf("%-13s  %s\n", s.ID, s.Title)
		}
		for _, s := range experiment.Ablations() {
			fmt.Printf("%-13s  %s\n", s.ID, s.Title)
		}
		return
	}
	if *fig == "" && *compare == "" {
		fmt.Fprintln(os.Stderr, "figures: -fig, -compare, or -list required (try -fig fig7)")
		os.Exit(2)
	}

	opts := experiment.Options{
		Hosts:    *hosts,
		Requests: *requests,
		Replicas: *replicas,
		BaseSeed: *seed,
		Workers:  *workers,
		Trials:   *trials,
		CI:       *ci,
	}
	if *progress {
		opts.Progress = os.Stderr
	}

	stopProf, err := obs.StartProfiles(*cpuprof, *memprof)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}

	var specs []experiment.Spec
	switch {
	case *compare != "":
		var parsed []scheme.Scheme
		for _, spec := range strings.Fields(*compare) {
			s, err := scheme.Parse(spec)
			if err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(2)
			}
			parsed = append(parsed, s)
		}
		specs = []experiment.Spec{experiment.CompareSpec(parsed)}
	case *fig == "all":
		specs = experiment.Registry()
	case *fig == "ablations":
		specs = experiment.Ablations()
	default:
		s, ok := experiment.LookupAny(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "figures: unknown figure %q (use -list)\n", *fig)
			os.Exit(2)
		}
		specs = []experiment.Spec{s}
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
	}
	for _, s := range specs {
		start := time.Now()
		tables := s.Run(opts)
		fmt.Printf("== %s: %s ==\n", s.ID, s.Title)
		if *paper {
			fmt.Printf("paper: %s\n", s.Paper)
		}
		fmt.Println()
		for i, t := range tables {
			if *csv {
				fmt.Print(t.CSV())
			} else {
				fmt.Print(t.Text())
			}
			fmt.Println()
			if *out != "" {
				name := filepath.Join(*out, fmt.Sprintf("%s_%d.csv", s.ID, i+1))
				if err := os.WriteFile(name, []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, "figures:", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("(%s regenerated in %v)\n\n", s.ID, time.Since(start).Round(time.Millisecond))
	}

	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

// loadReport decodes a stormsim -telemetry export and prints its
// per-interval channel-load table.
func loadReport(path string, asCSV bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	dump, err := obs.Decode(f)
	if err != nil {
		return err
	}
	t, err := experiment.LoadReport(dump)
	if err != nil {
		return err
	}
	if asCSV {
		fmt.Print(t.CSV())
	} else {
		fmt.Print(t.Text())
	}
	return nil
}
