// Command stormanalysis reproduces the paper's closed-form and
// Monte-Carlo storm analyses without running a network simulation:
//
//	stormanalysis -eac 10        EAC(k) for k=1..10      (paper Fig. 1)
//	stormanalysis -cf 10         cf(n,k) for n=1..10     (paper Fig. 2)
//	stormanalysis -constants     the analytic constants (0.61, 0.41, 0.59)
package main

import (
	"flag"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/geom"
	"repro/internal/sim"
)

func main() {
	var (
		eacMax    = flag.Int("eac", 0, "print EAC(k) for k=1..N")
		cfMax     = flag.Int("cf", 0, "print cf(n,k) distributions for n=1..N")
		constants = flag.Bool("constants", false, "print the paper's analytic constants")
		trials    = flag.Int("trials", 20000, "Monte-Carlo trials")
		seed      = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	if !*constants && *eacMax == 0 && *cfMax == 0 {
		*constants = true
		*eacMax = 10
		*cfMax = 10
	}

	if *constants {
		const r = 500.0
		fmt.Println("analytic constants (radius-independent):")
		fmt.Printf("  max additional coverage at d=r:      %.4f of pi*r^2 (paper: ~0.61)\n",
			geom.AdditionalCoverageFraction(r, r))
		fmt.Printf("  mean additional coverage (1 sender): %.4f of pi*r^2 (paper: ~0.41)\n",
			geom.ExpectedAdditionalCoverageFraction(r))
		fmt.Printf("  pairwise contention probability:     %.4f           (paper: ~0.59)\n",
			geom.ExpectedContentionProbability(r))
		fmt.Println()
	}

	if *eacMax > 0 {
		rng := sim.NewRNG(*seed)
		fmt.Printf("EAC(k)/(pi r^2), %d trials (paper Fig. 1):\n", *trials)
		for k, v := range analysis.EACSeries(*eacMax, *trials, 64, rng) {
			fmt.Printf("  k=%-2d  %.4f\n", k+1, v)
		}
		fmt.Println()
	}

	if *cfMax > 0 {
		rng := sim.NewRNG(*seed + 1)
		fmt.Printf("cf(n,k), %d trials (paper Fig. 2):\n", *trials)
		table := analysis.ContentionFreeTable(*cfMax, *trials, rng)
		fmt.Printf("  %-3s", "n")
		for k := 0; k <= 4; k++ {
			fmt.Printf("  k=%-6d", k)
		}
		fmt.Println()
		for n := 1; n <= *cfMax; n++ {
			fmt.Printf("  %-3d", n)
			for k := 0; k <= 4 && k < len(table[n-1]); k++ {
				fmt.Printf("  %.4f  ", table[n-1][k])
			}
			fmt.Println()
		}
	}
}
