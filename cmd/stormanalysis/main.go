// Command stormanalysis reproduces the paper's closed-form and
// Monte-Carlo storm analyses without running a network simulation:
//
//	stormanalysis -eac 10        EAC(k) for k=1..10      (paper Fig. 1)
//	stormanalysis -cf 10         cf(n,k) for n=1..10     (paper Fig. 2)
//	stormanalysis -constants     the analytic constants (0.61, 0.41, 0.59)
//	stormanalysis -scheme ac:n1=3,n2=10 -funcs 15
//	                             tabulate a spec's threshold function
//
// Schemes for -scheme are registry specs (run with -schemes for syntax).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/scheme"
	"repro/internal/sim"
)

func main() {
	var (
		eacMax      = flag.Int("eac", 0, "print EAC(k) for k=1..N")
		cfMax       = flag.Int("cf", 0, "print cf(n,k) distributions for n=1..N")
		constants   = flag.Bool("constants", false, "print the paper's analytic constants")
		trials      = flag.Int("trials", 20000, "Monte-Carlo trials")
		seed        = flag.Uint64("seed", 1, "random seed")
		schemeSpec  = flag.String("scheme", "", "scheme spec to analyze with -funcs (run -schemes for syntax)")
		funcsMax    = flag.Int("funcs", 0, "tabulate the -scheme spec's threshold/decision function for n=0..N")
		listSchemes = flag.Bool("schemes", false, "print the scheme spec syntax and exit")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	if *listSchemes {
		fmt.Print("scheme specs:\n", scheme.Usage())
		return
	}

	stopProf, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stormanalysis:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "stormanalysis:", err)
			os.Exit(1)
		}
	}()
	if *schemeSpec != "" {
		if *funcsMax == 0 {
			*funcsMax = 15
		}
		if err := printSchemeFuncs(*schemeSpec, *funcsMax); err != nil {
			fmt.Fprintln(os.Stderr, "stormanalysis:", err)
			os.Exit(2)
		}
		return
	}

	if !*constants && *eacMax == 0 && *cfMax == 0 {
		*constants = true
		*eacMax = 10
		*cfMax = 10
	}

	if *constants {
		const r = 500.0
		fmt.Println("analytic constants (radius-independent):")
		fmt.Printf("  max additional coverage at d=r:      %.4f of pi*r^2 (paper: ~0.61)\n",
			geom.AdditionalCoverageFraction(r, r))
		fmt.Printf("  mean additional coverage (1 sender): %.4f of pi*r^2 (paper: ~0.41)\n",
			geom.ExpectedAdditionalCoverageFraction(r))
		fmt.Printf("  pairwise contention probability:     %.4f           (paper: ~0.59)\n",
			geom.ExpectedContentionProbability(r))
		fmt.Println()
	}

	if *eacMax > 0 {
		rng := sim.NewRNG(*seed)
		fmt.Printf("EAC(k)/(pi r^2), %d trials (paper Fig. 1):\n", *trials)
		for k, v := range analysis.EACSeries(*eacMax, *trials, 64, rng) {
			fmt.Printf("  k=%-2d  %.4f\n", k+1, v)
		}
		fmt.Println()
	}

	printCF(*cfMax, *trials, *seed)
}

// printSchemeFuncs tabulates the decision threshold a parsed spec would
// apply at each neighbor count n — the paper's C(n) and A(n) curves
// (Figs. 5, 7) for the adaptive schemes, or the constant threshold for
// the fixed ones.
func printSchemeFuncs(spec string, maxN int) error {
	s, err := scheme.Parse(spec)
	if err != nil {
		return err
	}
	switch v := s.(type) {
	case scheme.AdaptiveCounter:
		fn := v.C
		if fn == nil {
			fn = scheme.DefaultCounterFunc()
		}
		fmt.Printf("%s counter threshold C(n):\n", v.Name())
		for n := 0; n <= maxN; n++ {
			fmt.Printf("  n=%-3d  C=%d\n", n, fn(n))
		}
	case scheme.AdaptiveLocation:
		fn := v.A
		if fn == nil {
			fn = scheme.DefaultLocationFunc()
		}
		fmt.Printf("%s coverage threshold A(n), fraction of pi*r^2:\n", v.Name())
		for n := 0; n <= maxN; n++ {
			fmt.Printf("  n=%-3d  A=%.4f\n", n, fn(n))
		}
	case scheme.Counter:
		fmt.Printf("%s: fixed counter threshold C=%d for all n\n", v.Name(), v.C)
	case scheme.Distance:
		fmt.Printf("%s: fixed distance threshold D=%g m for all n\n", v.Name(), v.D)
	case scheme.Location:
		fmt.Printf("%s: fixed coverage threshold A=%g for all n\n", v.Name(), v.A)
	case scheme.Probabilistic:
		fmt.Printf("%s: rebroadcast probability P=%g for all n\n", v.Name(), v.P)
	default:
		fmt.Printf("%s: no tunable threshold function (decision is structural)\n", s.Name())
	}
	return nil
}

func printCF(cfMax, trials int, seed uint64) {
	if cfMax <= 0 {
		return
	}
	rng := sim.NewRNG(seed + 1)
	fmt.Printf("cf(n,k), %d trials (paper Fig. 2):\n", trials)
	table := analysis.ContentionFreeTable(cfMax, trials, rng)
	fmt.Printf("  %-3s", "n")
	for k := 0; k <= 4; k++ {
		fmt.Printf("  k=%-6d", k)
	}
	fmt.Println()
	for n := 1; n <= cfMax; n++ {
		fmt.Printf("  %-3d", n)
		for k := 0; k <= 4 && k < len(table[n-1]); k++ {
			fmt.Printf("  %.4f  ", table[n-1][k])
		}
		fmt.Println()
	}
}
